//! The network world: a [`massf_engine::Model`] that forwards packets
//! hop by hop over a topology, runs TCP endpoints at hosts, and calls
//! into application logic.
//!
//! **LP-locality contract** (required by the engine for parallel
//! equivalence): handling an event at node `n` touches only `n`'s state —
//! its flow tables, its per-outgoing-link transmit queues, and its
//! application state. All cross-node effects are packets (events).
//!
//! **Memory layout** (DESIGN.md §3 item 13): per-flow state lives in
//! struct-of-arrays slabs ([`FlowSlab`], [`ReceiverSlab`]) instead of
//! per-flow `HashMap` entries, the port table is a sorted CSR adjacency
//! instead of a `HashMap<(u32, u32), u32>`, and packets carry a single
//! interned path `Arc` (see [`Packet`]). Slab slot numbers are an
//! implementation detail of one world instance — they never leak into
//! `FlowId`s, events, or results, so sequential and parallel runs stay
//! bit-identical even though their worlds recycle slots differently.

use crate::fluid::{
    FluidCoupling, FluidState, FluidWorldState, FLUID_CONTROL_DELAY, FLUID_COORDINATOR,
    PACKET_FLOOR_DIV,
};
use crate::packet::{FlowId, NetEvent, Packet, PacketKind, ACK_BYTES, HEADER_BYTES, MSS};
use crate::profiling::ProfileData;
use crate::tcp::{AbortReason, SendAction, TcpReceiver, TcpSender, TcpSenderState, MAX_RETRIES};
use massf_engine::{Emitter, LpId, Model, SimTime};
use massf_faults::{FaultKind, FaultState};
use massf_routing::{PathResolver, RouteCache, RouteCacheShardState, RouteCacheState};
use massf_topology::{Link, MassfError, Network, NodeId};
use std::sync::Arc;

/// Default per-source route-cache capacity (destinations per source
/// node; see [`RouteCache`]). Sized so even a 20,000-node world stays
/// within tens of MB of cache while typical workloads — which revisit
/// far fewer than 128 peers per host — hit on nearly every resolve.
/// Pass `0` to [`NetWorld::with_route_cache`] /
/// [`crate::NetSimBuilder::route_cache_capacity`] to disable caching.
pub const DEFAULT_ROUTE_CACHE_CAPACITY: usize = 128;

/// Transport protocol selector for injected traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    Tcp,
    Udp,
}

/// Sorted CSR adjacency for next-hop port lookup: for each node, its
/// neighbor ids in ascending order and the connecting link index, in
/// parallel `u32` arrays. Replaces the former `HashMap<(u32, u32), u32>`
/// — a binary search over a node's (short) neighbor range touches one
/// or two cache lines, allocates nothing, and iterates in a fixed
/// order, so it is trivially deterministic.
struct PortTable {
    /// Per-node range into `neighbors`/`links`; length `node_count + 1`.
    offsets: Box<[u32]>,
    /// Neighbor node ids, ascending within each node's range.
    neighbors: Box<[u32]>,
    /// Link index for the corresponding neighbor entry.
    links: Box<[u32]>,
}

impl PortTable {
    fn build(net: &Network) -> Self {
        let n = net.node_count();
        let mut offsets = vec![0u32; n + 1];
        for link in &net.links {
            offsets[link.a.index() + 1] += 1;
            offsets[link.b.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[n] as usize;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; total];
        let mut links = vec![0u32; total];
        for link in &net.links {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let c = &mut cursor[from.index()];
                neighbors[*c as usize] = to.0;
                links[*c as usize] = link.id.0;
                *c += 1;
            }
        }
        // Sort each node's range by neighbor id. The sort is stable, so
        // parallel links between the same pair keep link-insertion order
        // and lookup — which takes the *last* entry of an equal-neighbor
        // run — preserves the previous HashMap's insert-overwrite
        // semantics exactly.
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            let range = offsets[i] as usize..offsets[i + 1] as usize;
            scratch.clear();
            scratch.extend(
                neighbors[range.clone()]
                    .iter()
                    .copied()
                    .zip(links[range.clone()].iter().copied()),
            );
            scratch.sort_by_key(|&(nb, _)| nb);
            for (k, &(nb, l)) in scratch.iter().enumerate() {
                neighbors[offsets[i] as usize + k] = nb;
                links[offsets[i] as usize + k] = l;
            }
        }
        PortTable {
            offsets: offsets.into(),
            neighbors: neighbors.into(),
            links: links.into(),
        }
    }

    /// Link index connecting `from → to`, if adjacent.
    fn lookup(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let lo = self.offsets[from.index()] as usize;
        let hi = self.offsets[from.index() + 1] as usize;
        let ns = &self.neighbors[lo..hi];
        let end = ns.partition_point(|&nb| nb <= to.0);
        if end > 0 && ns[end - 1] == to.0 {
            Some(self.links[lo + end - 1])
        } else {
            None
        }
    }
}

/// Immutable data shared by all partitions: topology, routing, and
/// per-link derived constants.
pub struct SharedNet {
    pub net: Network,
    pub resolver: Arc<dyn PathResolver>,
    /// Scripted fault timeline, when fault injection is enabled. All
    /// queries are pure functions of virtual time, so sharing one
    /// instance across partitions preserves parallel determinism.
    pub faults: Option<Arc<FaultState>>,
    /// `(from, to)` → link index, both directions (sorted CSR).
    port: PortTable,
    /// Drop-tail buffer size per link, bytes.
    buffer_bytes: Vec<u64>,
    /// Per-link line rate in bytes/s (fixed-point image of
    /// `bandwidth_bps`, `≥ 1`), shared by the fluid solver and the
    /// packet-side coupling so both fidelities divide the same integer.
    pub(crate) cap_bytes_per_sec: Vec<u64>,
}

impl SharedNet {
    /// Derive shared state. Buffers default to 50 ms of line rate,
    /// floored at 30 kB (≈ 20 packets).
    pub fn new(net: Network, resolver: Arc<dyn PathResolver>) -> Arc<Self> {
        Self::build(net, resolver, None)
    }

    /// Like [`SharedNet::new`], with fault injection enabled: routing
    /// follows the fault timeline's per-epoch resolvers (epoch 0 — the
    /// fault-free prefix — uses `faults`' base resolver) and packets
    /// touching dead links or nodes are dropped.
    pub fn with_faults(net: Network, faults: Arc<FaultState>) -> Arc<Self> {
        let resolver = faults.resolver_for_epoch(0).clone();
        Self::build(net, resolver, Some(faults))
    }

    fn build(
        net: Network,
        resolver: Arc<dyn PathResolver>,
        faults: Option<Arc<FaultState>>,
    ) -> Arc<Self> {
        let port = PortTable::build(&net);
        let mut buffer_bytes = Vec::with_capacity(net.links.len());
        let mut cap_bytes_per_sec = Vec::with_capacity(net.links.len());
        for link in &net.links {
            buffer_bytes.push(((link.bandwidth_bps * 0.050 / 8.0) as u64).max(30_000));
            cap_bytes_per_sec.push(((link.bandwidth_bps / 8.0) as u64).max(1));
        }
        Arc::new(SharedNet {
            net,
            resolver,
            faults,
            port,
            buffer_bytes,
            cap_bytes_per_sec,
        })
    }

    /// The link connecting `from` to `to`, if adjacent.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.port
            .lookup(from, to)
            .map(|l| &self.net.links[l as usize])
    }

    /// The path resolver in force at `now`: the epoch resolver of the
    /// fault timeline when faults are enabled, the static resolver
    /// otherwise.
    pub fn resolver_at(&self, now: SimTime) -> &dyn PathResolver {
        match &self.faults {
            Some(f) => f.resolver_at(now).as_ref(),
            None => self.resolver.as_ref(),
        }
    }

    /// Number of LPs (all nodes are LPs).
    pub fn lp_count(&self) -> usize {
        self.net.node_count()
    }

    /// Largest barrier window safe for running this network in parallel
    /// under `assignment`: the minimum latency of any link whose
    /// endpoints land in different partitions (the cut MLL), capped at
    /// [`FLUID_CONTROL_DELAY`] so fluid-coordinator control events are
    /// always covered regardless of which partition hosts the
    /// coordinator. With no cut links (e.g. a single partition) the cap
    /// alone applies. The window affects only synchronization frequency,
    /// never results, so callers (the online rebalancer recomputes this
    /// after every migration) may use it freely.
    pub fn safe_parallel_window(&self, assignment: &[u32]) -> SimTime {
        let mut mll = f64::INFINITY;
        for link in &self.net.links {
            if assignment[link.a.index()] != assignment[link.b.index()] && link.latency_ms < mll {
                mll = link.latency_ms;
            }
        }
        if mll.is_finite() {
            SimTime::from_ms_f64(mll).min(FLUID_CONTROL_DELAY)
        } else {
            FLUID_CONTROL_DELAY
        }
    }

    /// Link ids incident to `node` (CSR range; each id appears once per
    /// adjacency entry). Used by the fluid coordinator to localize a
    /// router crash to the flows traversing it.
    pub(crate) fn incident_links(&self, node: NodeId) -> &[u32] {
        let lo = self.port.offsets[node.index()] as usize;
        let hi = self.port.offsets[node.index() + 1] as usize;
        &self.port.links[lo..hi]
    }
}

/// The interface application logic uses to act on the network. All
/// actions originate at the current host (the LP whose event is being
/// handled).
pub struct SimApi<'a, 'b> {
    host: NodeId,
    now: SimTime,
    shared: &'a SharedNet,
    state: &'a mut NodeStates,
    profile: &'a mut ProfileData,
    emitter: &'a mut Emitter<'b, NetEvent>,
}

impl SimApi<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this logic runs on.
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Open a TCP flow of `bytes` from this host to `dst`. Returns the
    /// flow id, or `None` when `dst` is unreachable (possible under BGP
    /// policy) or `dst` is this host.
    pub fn start_tcp_flow(&mut self, dst: NodeId, bytes: u64) -> Option<FlowId> {
        start_tcp_flow_inner(
            self.shared,
            self.state,
            self.profile,
            self.emitter,
            self.host,
            dst,
            bytes,
            self.now,
        )
    }

    /// Send one UDP datagram of `bytes` payload to `dst`, carrying the
    /// app-opaque `meta` word. Returns false when unreachable.
    pub fn send_datagram(&mut self, dst: NodeId, bytes: u32, meta: u64) -> bool {
        let Some(path) = route_arc(
            self.shared,
            &mut self.state.route_cache,
            self.profile,
            self.host,
            dst,
            self.now,
        ) else {
            self.profile.unroutable += 1;
            return false;
        };
        let counter = &mut self.state.flow_counter[self.host.index()];
        let flow = FlowId::new(self.host, *counter);
        *counter += 1;
        let pkt = Packet {
            flow,
            meta,
            path,
            dst,
            seq: 0,
            size_bytes: bytes + HEADER_BYTES,
            hop: 0,
            kind: PacketKind::Datagram,
        };
        transmit(
            self.shared,
            &mut self.state.busy_until,
            &mut self.state.coupling,
            self.profile,
            self.emitter,
            pkt,
            self.now,
        );
        true
    }

    /// Arm an application timer that will fire `on_timer(host, token)`
    /// after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.emitter
            .emit(delay, LpId(self.host.0), NetEvent::AppTimer { token });
    }

    /// Request a fluid (flow-level) background flow from this host to
    /// `dst` (see `crate::fluid`). The request travels to the fluid
    /// coordinator LP with the uniform [`FLUID_CONTROL_DELAY`];
    /// admission (routability) is decided there, so there is no
    /// immediate flow id. `peak_bps` (bits/s, matching link bandwidth
    /// units) caps the flow's demand; `0` means bottleneck-limited.
    pub fn start_fluid_flow(&mut self, dst: NodeId, bytes: u64, peak_bps: u64) {
        self.emitter.emit(
            FLUID_CONTROL_DELAY,
            LpId(FLUID_COORDINATOR.0),
            NetEvent::FluidStart {
                src: self.host,
                dst,
                bytes,
                peak_bps,
            },
        );
    }
}

/// Application logic attached to hosts. Implementations keep any
/// per-host state internally, indexed by host id, and must touch only
/// the state of the host passed to each callback (LP locality).
pub trait AppLogic: Send {
    /// A TCP flow started by `host` completed (all data acknowledged).
    fn on_flow_complete(&mut self, host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>);

    /// An application timer armed via [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>);

    /// A UDP datagram arrived at `host`, carrying the sender's `meta`.
    fn on_datagram(
        &mut self,
        _host: NodeId,
        _from_flow: FlowId,
        _payload_bytes: u32,
        _meta: u64,
        _api: &mut SimApi<'_, '_>,
    ) {
    }

    /// A TCP flow started by `host` gave up (retry budget exhausted,
    /// typically because a fault severed its path). Default: ignore.
    fn on_flow_aborted(
        &mut self,
        _host: NodeId,
        _flow: FlowId,
        _reason: AbortReason,
        _api: &mut SimApi<'_, '_>,
    ) {
    }

    /// A fluid background flow `src → dst` transferred all its bytes.
    /// Called at the fluid coordinator LP (`api.host()` is the
    /// coordinator, not `src`). Default: ignore.
    fn on_fluid_complete(
        &mut self,
        _src: NodeId,
        _flow: FlowId,
        _dst: NodeId,
        _api: &mut SimApi<'_, '_>,
    ) {
    }

    /// A fluid background flow was terminated by a fault with no
    /// surviving path. Called at the coordinator LP. Default: ignore.
    fn on_fluid_aborted(
        &mut self,
        _src: NodeId,
        _flow: FlowId,
        _dst: NodeId,
        _api: &mut SimApi<'_, '_>,
    ) {
    }
}

/// An [`AppLogic`] that does nothing (pure background-free forwarding).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoApp;

impl AppLogic for NoApp {
    fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
    fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
}

/// The per-host counter packed into a [`FlowId`]'s low 32 bits.
#[inline]
fn flow_counter_of(flow: FlowId) -> u32 {
    (flow.0 & 0xFFFF_FFFF) as u32
}

/// Cold per-flow sender bookkeeping: touched at flow setup, RTO
/// fail-over, and teardown, but not on the per-ACK hot path (only its
/// `path`/`dst` words are read there, to stamp outgoing packets).
struct FlowCold {
    /// Forward path; the `Arc` is interned per `(epoch, src, dst)` by
    /// the world's route cache, so concurrent flows between the same
    /// pair share one allocation.
    path: Arc<[NodeId]>,
    /// Flow destination, cached out of the path.
    dst: NodeId,
    /// Epoch of the currently armed RTO timer.
    armed_epoch: u32,
    /// The last fault-driven re-resolution found no path (colors the
    /// abort reason).
    unroutable: bool,
}

/// Struct-of-arrays slab of active TCP senders, replacing the former
/// `HashMap<FlowId, FlowState>`.
///
/// Storage is slot-indexed: `hot[slot]` holds the TCP state machine
/// (the only thing the per-ACK hot path mutates), `cold[slot]` the
/// path/bookkeeping, and freed slots are recycled LIFO through `free`.
/// Lookup goes through a dense per-node index of `(flow counter, slot)`
/// pairs — per-host counters are monotone, so appends keep each index
/// sorted and lookup is a binary search over a short, cache-dense
/// array. Slot assignment is a pure function of the world's event
/// sequence (pop order of a LIFO free list), but slots are never
/// exposed: the semantic key is always `(node, counter)`.
struct FlowSlab {
    /// Hot per-flow TCP state machines.
    hot: Vec<TcpSender>,
    /// Cold per-flow bookkeeping, parallel to `hot`.
    cold: Vec<FlowCold>,
    /// Recycled slots, reused LIFO.
    free: Vec<u32>,
    /// Per-node `(flow counter, slot)` pairs, sorted by counter.
    by_node: Vec<Vec<(u32, u32)>>,
    /// Shared empty path installed in freed slots so the real path
    /// `Arc` is released as soon as the flow ends.
    empty: Arc<[NodeId]>,
}

impl FlowSlab {
    fn new(nodes: usize) -> Self {
        FlowSlab {
            hot: Vec::new(),
            cold: Vec::new(),
            free: Vec::new(),
            by_node: vec![Vec::new(); nodes],
            empty: Arc::from([]),
        }
    }

    /// Store a freshly opened flow; recycles a freed slot when one is
    /// available.
    fn insert(&mut self, node: NodeId, flow: FlowId, sender: TcpSender, cold: FlowCold) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.hot[s as usize] = sender;
                self.cold[s as usize] = cold;
                s
            }
            None => {
                self.hot.push(sender);
                self.cold.push(cold);
                (self.hot.len() - 1) as u32
            }
        };
        let index = &mut self.by_node[node.index()];
        debug_assert!(
            index.last().is_none_or(|&(c, _)| c < flow_counter_of(flow)),
            "per-host flow counters are monotone"
        );
        index.push((flow_counter_of(flow), slot));
    }

    /// The slot of `flow` at `node`, if the flow is still active.
    fn slot_of(&self, node: NodeId, flow: FlowId) -> Option<usize> {
        let index = &self.by_node[node.index()];
        index
            .binary_search_by_key(&flow_counter_of(flow), |&(c, _)| c)
            .ok()
            .map(|i| index[i].1 as usize)
    }

    /// Release a finished flow's slot for reuse and drop its path.
    fn free(&mut self, node: NodeId, flow: FlowId) {
        let index = &mut self.by_node[node.index()];
        if let Ok(i) = index.binary_search_by_key(&flow_counter_of(flow), |&(c, _)| c) {
            let (_, slot) = index.remove(i);
            self.cold[slot as usize].path = self.empty.clone();
            self.free.push(slot);
        }
    }
}

/// Struct-of-arrays slab of TCP receivers, replacing the former
/// `HashMap<FlowId, TcpReceiver>`. Receiver entries live at the
/// *destination* LP and are never freed (the sender cannot reach across
/// LPs to close them — LP locality); they are bounded by the flow count
/// and each is a two-word cumulative-ACK machine.
struct ReceiverSlab {
    state: Vec<TcpReceiver>,
    /// Per-node `(flow, slot)` pairs, sorted by flow id.
    by_node: Vec<Vec<(FlowId, u32)>>,
}

impl ReceiverSlab {
    fn new(nodes: usize) -> Self {
        ReceiverSlab {
            state: Vec::new(),
            by_node: vec![Vec::new(); nodes],
        }
    }

    /// The receiver for `flow` at `node`, created on first touch.
    fn entry(&mut self, node: NodeId, flow: FlowId) -> &mut TcpReceiver {
        let index = &mut self.by_node[node.index()];
        let slot = match index.binary_search_by_key(&flow, |&(f, _)| f) {
            Ok(i) => index[i].1,
            Err(i) => {
                let slot = self.state.len() as u32;
                self.state.push(TcpReceiver::default());
                index.insert(i, (flow, slot));
                slot
            }
        };
        &mut self.state[slot as usize]
    }
}

/// Mutable per-node state. A world touches only entries belonging to its
/// partition's nodes.
struct NodeStates {
    /// Per-host counter for FlowId generation.
    flow_counter: Vec<u32>,
    /// Transmit-server state per (link, direction): the time the link
    /// becomes free. Direction 0 sends from `link.a`, 1 from `link.b`.
    busy_until: Vec<SimTime>,
    /// Active TCP senders (owned by the source host).
    flows: FlowSlab,
    /// TCP receivers (owned by the destination host).
    receivers: ReceiverSlab,
    /// Memoized path resolutions, sharded by source node. Routes are
    /// only resolved while handling an event at the source's LP, so
    /// each shard is owned by exactly one partition — per-run state
    /// that stays bit-identical across executors (see `route_arc`).
    /// Doubles as the world's path *interning* table: every packet of a
    /// flow (and every concurrent flow between the same pair in the
    /// same epoch) shares the one `Arc` cached here.
    route_cache: RouteCache,
    /// Reusable `SendAction` buffer, taken (and returned empty) by each
    /// handler batch so the steady-state hot path allocates nothing.
    action_scratch: Vec<SendAction>,
    /// Retry budget handed to every newly opened TCP flow.
    max_retries: u32,
    /// Packet-side fluid coupling per (link, direction): coordinator-
    /// reported fluid rates and the packet-load estimator. Lazily
    /// allocated on the first `FluidCapUpdate` this world receives, so
    /// packet-only runs carry nothing.
    coupling: FluidCoupling,
    /// The fluid solver, present only in the world owning
    /// [`FLUID_COORDINATOR`] and only once fluid traffic appeared.
    fluid: Option<Box<FluidState>>,
}

impl NodeStates {
    fn new(shared: &SharedNet, route_cache_capacity: usize, max_retries: u32) -> Self {
        let nodes = shared.net.node_count();
        NodeStates {
            flow_counter: vec![0; nodes],
            busy_until: vec![SimTime::ZERO; shared.net.links.len() * 2],
            flows: FlowSlab::new(nodes),
            receivers: ReceiverSlab::new(nodes),
            route_cache: RouteCache::new(nodes, route_cache_capacity),
            action_scratch: Vec::new(),
            max_retries,
            coupling: FluidCoupling::default(),
            fluid: None,
        }
    }
}

/// The packet-level network model (one instance per partition, or a
/// single instance for sequential runs).
pub struct NetWorld<A: AppLogic> {
    shared: Arc<SharedNet>,
    state: NodeStates,
    profile: ProfileData,
    app: A,
}

impl<A: AppLogic> NetWorld<A> {
    /// A world over `shared` with application logic `app` and the
    /// default route-cache capacity.
    pub fn new(shared: Arc<SharedNet>, app: A) -> Self {
        Self::with_route_cache(shared, app, DEFAULT_ROUTE_CACHE_CAPACITY)
    }

    /// Like [`NetWorld::new`] with an explicit per-source route-cache
    /// capacity (`0` disables route caching).
    pub fn with_route_cache(shared: Arc<SharedNet>, app: A, route_cache_capacity: usize) -> Self {
        Self::with_config(shared, app, route_cache_capacity, MAX_RETRIES)
    }

    /// Like [`NetWorld::with_route_cache`] with an explicit TCP retry
    /// budget for every flow opened in this world (see
    /// [`crate::tcp::TcpSender::with_retries`]).
    pub fn with_config(
        shared: Arc<SharedNet>,
        app: A,
        route_cache_capacity: usize,
        max_retries: u32,
    ) -> Self {
        let state = NodeStates::new(&shared, route_cache_capacity, max_retries);
        let profile = ProfileData::new(shared.net.node_count(), shared.net.links.len());
        NetWorld {
            shared,
            state,
            profile,
            app,
        }
    }

    /// Traffic-profile counters accumulated so far.
    pub fn profile(&self) -> &ProfileData {
        &self.profile
    }

    /// Consume the world, returning profile and application state.
    pub fn into_parts(self) -> (ProfileData, A) {
        (self.profile, self.app)
    }

    /// Application logic (e.g. to read workload completion records).
    pub fn app(&self) -> &A {
        &self.app
    }
}

/// Resolve a route at virtual time `now` through the world's path
/// cache, requiring ≥ 2 nodes. Keys embed the fault-epoch index, so a
/// reconvergence can never serve a pre-fault path; repeated pairs in
/// the same epoch share one `Arc` and skip the resolver entirely.
///
/// Determinism: this is only called while handling an event at `src`'s
/// LP, so the per-src cache shard — and with it every hit/miss/evict
/// counter in `profile.route_cache` — sees the same query sequence at
/// any thread count or partitioning.
fn route_arc(
    shared: &SharedNet,
    cache: &mut RouteCache,
    profile: &mut ProfileData,
    src: NodeId,
    dst: NodeId,
    now: SimTime,
) -> Option<Arc<[NodeId]>> {
    if src == dst {
        return None;
    }
    let epoch = match &shared.faults {
        // simlint: allow(cast-lossy) -- epoch count is bounded by the fault-script length, far below u32::MAX
        Some(f) => f.epoch_at(now) as u32,
        None => 0,
    };
    cache.get_or_insert_with(&mut profile.route_cache, epoch, src, dst, || {
        let path = shared.resolver_at(now).route_arc(src, dst);
        if let Some(p) = &path {
            debug_assert!(p.len() >= 2);
        }
        path
    })
}

/// Put `pkt` on the wire at `node_at(hop) → node_at(hop+1)`. Applies
/// store-and-forward serialization, FIFO queueing, and drop-tail loss;
/// schedules the arrival at the next hop. Packets offered to a dead
/// link or dead endpoint are counted as fault drops.
fn transmit(
    shared: &SharedNet,
    busy_until: &mut [SimTime],
    coupling: &mut FluidCoupling,
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    mut pkt: Packet,
    now: SimTime,
) {
    let from = pkt.node_at(pkt.hop as usize);
    let to = pkt.node_at(pkt.hop as usize + 1);
    let link = shared
        .link_between(from, to)
        .expect("resolved paths follow existing links");
    if let Some(f) = &shared.faults {
        if !f.is_link_up(link.id, now) || !f.is_node_up(from, now) || !f.is_node_up(to, now) {
            profile.fault_drops += 1;
            return;
        }
    }
    let dir = usize::from(from != link.a);
    let slot = link.id.index() * 2 + dir;

    // Fluid → packet coupling: once the coordinator has reported a
    // fluid aggregate for this slot, packets serialize at the residual
    // line rate (the fluid share is clamped so packets keep ≥ 1/16 of
    // the link) and the fluid share of the drop-tail buffer is charged
    // as standing occupancy. Unsubscribed slots — every slot in a
    // packet-only run — take the exact pre-fluid arithmetic, so pure
    // packet runs are bit-identical to what they were.
    let fluid = match coupling.fluid_bps.get(slot) {
        Some(&f) if f != u64::MAX => {
            let cap = shared.cap_bytes_per_sec[link.id.index()];
            Some(f.min(cap - cap / PACKET_FLOOR_DIV))
        }
        _ => None,
    };
    let (bandwidth_bps, buffer) = match fluid {
        Some(fl) => {
            let cap = shared.cap_bytes_per_sec[link.id.index()];
            let buf = shared.buffer_bytes[link.id.index()];
            let fluid_buf = ((buf as u128 * fl as u128) / cap as u128) as u64;
            ((cap - fl) as f64 * 8.0, buf - fluid_buf)
        }
        None => (link.bandwidth_bps, shared.buffer_bytes[link.id.index()]),
    };

    let busy = busy_until[slot];
    let depart = busy.max(now);
    // Bytes already queued = backlog time × (residual) line rate.
    let backlog_bytes = (depart.saturating_sub(now).as_secs_f64() * bandwidth_bps / 8.0) as u64;
    if backlog_bytes + pkt.size_bytes as u64 > buffer {
        profile.drops += 1;
        return;
    }
    let tx = SimTime::from_secs_f64(pkt.size_bytes as f64 * 8.0 / bandwidth_bps);
    busy_until[slot] = depart + tx;
    profile.link_packets[link.id.index()] += 1;
    if fluid.is_some() {
        // Packet → fluid coupling: feed the slot's load estimator.
        coupling.observe(
            shared.cap_bytes_per_sec[link.id.index()],
            slot,
            pkt.size_bytes as u64,
            now,
            emitter,
        );
    }

    let arrival_delay = (depart + tx + SimTime::from_ms_f64(link.latency_ms)) - now;
    pkt.hop += 1;
    emitter.emit(arrival_delay, LpId(to.0), NetEvent::Arrive(pkt));
}

/// Open a TCP flow; shared by `SimApi` and the `StartFlow` event.
#[allow(clippy::too_many_arguments)]
fn start_tcp_flow_inner(
    shared: &SharedNet,
    state: &mut NodeStates,
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    now: SimTime,
) -> Option<FlowId> {
    let Some(path) = route_arc(shared, &mut state.route_cache, profile, src, dst, now) else {
        profile.unroutable += 1;
        return None;
    };
    let counter = &mut state.flow_counter[src.index()];
    let flow = FlowId::new(src, *counter);
    *counter += 1;

    let mut sender = TcpSender::with_retries(bytes, state.max_retries);
    let mut actions = std::mem::take(&mut state.action_scratch);
    sender.open(now, &mut actions);
    apply_actions(
        shared,
        &mut state.busy_until,
        &mut state.coupling,
        profile,
        emitter,
        flow,
        &path,
        dst,
        &mut actions,
        now,
    );
    state.action_scratch = actions;
    let mut armed_epoch = u32::MAX;
    arm_timer(emitter, src, flow, &sender, &mut armed_epoch);
    state.flows.insert(
        src,
        flow,
        sender,
        FlowCold {
            path,
            dst,
            armed_epoch,
            unroutable: false,
        },
    );
    Some(flow)
}

/// How a batch of sender actions left the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowOutcome {
    Active,
    Completed,
    Aborted,
}

/// Turn sender actions into packets; reports whether the flow ended.
/// Drains `actions`, leaving the (capacity-retaining) buffer empty for
/// reuse.
#[allow(clippy::too_many_arguments)]
fn apply_actions(
    shared: &SharedNet,
    busy_until: &mut [SimTime],
    coupling: &mut FluidCoupling,
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    flow: FlowId,
    path: &Arc<[NodeId]>,
    dst: NodeId,
    actions: &mut Vec<SendAction>,
    now: SimTime,
) -> FlowOutcome {
    let mut outcome = FlowOutcome::Active;
    for action in actions.drain(..) {
        match action {
            SendAction::Transmit { seq } => {
                let pkt = Packet {
                    flow,
                    meta: 0,
                    path: path.clone(),
                    dst,
                    seq,
                    // Every segment modeled at full MSS; final-segment
                    // byte-exactness does not affect load shaping.
                    size_bytes: MSS + HEADER_BYTES,
                    hop: 0,
                    kind: PacketKind::Data,
                };
                transmit(shared, busy_until, coupling, profile, emitter, pkt, now);
            }
            SendAction::Complete => outcome = FlowOutcome::Completed,
            SendAction::Abort => outcome = FlowOutcome::Aborted,
        }
    }
    outcome
}

/// (Re-)arm the RTO timer when needed and not already armed for the
/// current epoch.
fn arm_timer(
    emitter: &mut Emitter<'_, NetEvent>,
    host: NodeId,
    flow: FlowId,
    sender: &TcpSender,
    armed_epoch: &mut u32,
) {
    if sender.needs_timer() && *armed_epoch != sender.timer_epoch {
        *armed_epoch = sender.timer_epoch;
        emitter.emit(
            sender.rto,
            LpId(host.0),
            NetEvent::RtoTimer {
                flow,
                epoch: sender.timer_epoch,
            },
        );
    }
}

/// One live TCP flow in a [`WorldState`] (sender side).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntryState {
    /// Flow id; encodes the owning source host and its per-host counter.
    pub flow: FlowId,
    /// Complete TCP sender state machine.
    pub sender: TcpSenderState,
    /// The flow's resolved forward path.
    pub path: Vec<NodeId>,
    /// Flow destination.
    pub dst: NodeId,
    /// Epoch of the currently armed RTO timer (`u32::MAX` = none).
    pub armed_epoch: u32,
    /// Last fault-driven re-resolution found no path.
    pub unroutable: bool,
}

/// One TCP receiver in a [`WorldState`] (destination side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverEntryState {
    /// Node the receiver lives at (the flow's destination).
    pub node: NodeId,
    /// The flow being received.
    pub flow: FlowId,
    /// Next expected segment.
    pub rcv_next: u32,
    /// Total data segments seen.
    pub segments_seen: u64,
}

/// Canonical image of all mutable [`NetWorld`] state, independent of the
/// partitioning (and of slab slot numbers) of the worlds it came from.
///
/// Flows are sorted by [`FlowId`] and receivers by `(node, flow)`, so
/// two worlds with identical semantic state export byte-identical
/// `WorldState`s even when their internal slot recycling diverged; this
/// is what makes snapshot → restore → snapshot idempotent. The
/// accumulated [`ProfileData`] rides along so a checkpoint carries the
/// run's counters; restore leaves the new world's own profile at zero
/// and the caller (e.g. the snapshot session) adds the two at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldState {
    /// Per-host flow-id counters.
    pub flow_counter: Vec<u32>,
    /// Per-(link, direction) transmit-server horizon, length `2·links`.
    pub busy_until: Vec<SimTime>,
    /// Live TCP senders, sorted by flow id.
    pub flows: Vec<FlowEntryState>,
    /// TCP receivers, sorted by `(node, flow)`.
    pub receivers: Vec<ReceiverEntryState>,
    /// The path-memo cache (content affects only the route-cache profile
    /// counters, but those participate in bit-identity checks).
    pub route_cache: RouteCacheState,
    /// Profile counters accumulated up to the export.
    pub profile: ProfileData,
    /// TCP retry budget for flows opened after restore.
    pub max_retries: u32,
    /// Fluid coordinator state (flows, packet loads, reported rates);
    /// empty in packet-only runs and in partition exports that don't
    /// own the coordinator LP.
    pub fluid: FluidWorldState,
    /// Packet-side coupling per slot: the fluid rate last installed by
    /// a `FluidCapUpdate` (`u64::MAX` = slot never subscribed). Length
    /// `2·links`, or empty when the world never saw fluid traffic.
    /// Partitions only advance slots whose sender node they own, and
    /// the unsubscribed value is the numeric maximum, so partition
    /// exports merge by elementwise **min**.
    pub fluid_seen_bps: Vec<u64>,
    /// Open packet-load estimator window start per slot
    /// (`SimTime::MAX` = closed); same length rules; min-merged.
    pub fluid_est_start: Vec<SimTime>,
    /// Bytes accumulated in the open estimator window per slot;
    /// max-merged (non-owners stay at 0).
    pub fluid_est_bytes: Vec<u64>,
    /// Last packet-load level reported to the coordinator per slot;
    /// max-merged (non-owners stay at 0).
    pub fluid_est_reported: Vec<u64>,
}

/// Check that `path` is a plausible source route over `shared`'s
/// topology: at least two in-range nodes, every consecutive pair
/// adjacent. Restored packets and flows travel these paths through
/// [`transmit`], whose link lookup `expect`s adjacency — hostile
/// snapshot input must be stopped here, not there.
pub(crate) fn validate_route(
    shared: &SharedNet,
    path: &[NodeId],
    section: &str,
) -> Result<(), MassfError> {
    let nodes = shared.net.node_count();
    let bad = |reason: String| MassfError::SnapshotCorrupt {
        section: section.to_owned(),
        reason,
    };
    if path.len() < 2 {
        return Err(bad(format!("path has {} nodes (need ≥ 2)", path.len())));
    }
    if let Some(n) = path.iter().find(|n| n.index() >= nodes) {
        return Err(bad(format!("path visits unknown node {}", n.0)));
    }
    for w in path.windows(2) {
        if shared.port.lookup(w[0], w[1]).is_none() {
            return Err(bad(format!("path hop {} → {} has no link", w[0].0, w[1].0)));
        }
    }
    Ok(())
}

/// Validate one in-flight event against the topology it will replay on.
/// Used when loading a snapshot: the executors and [`NetWorld::handle`]
/// trust event invariants (in-range LPs, adjacent path hops, hop index
/// within the walk) that a corrupted or hostile snapshot can violate,
/// so every deserialized event passes through here first.
pub fn validate_net_event(
    shared: &SharedNet,
    target: LpId,
    event: &NetEvent,
) -> Result<(), MassfError> {
    let nodes = shared.net.node_count();
    let bad = |reason: String| MassfError::SnapshotCorrupt {
        section: "events".into(),
        reason,
    };
    if (target.0 as usize) >= nodes {
        return Err(bad(format!("event targets unknown LP {}", target.0)));
    }
    match event {
        NetEvent::Arrive(pkt) => {
            validate_route(shared, &pkt.path, "events")?;
            let hop = pkt.hop as usize;
            // In-flight packets have always crossed ≥ 1 link and sit on
            // a node of their walk; `handle` reads `node_at(hop - 1)`
            // and `transmit` reads `node_at(hop + 1)` before the
            // destination, so anything outside [1, len-1] would panic.
            if hop == 0 || hop >= pkt.path.len() {
                return Err(bad(format!(
                    "packet hop {} outside its {}-node walk",
                    hop,
                    pkt.path.len()
                )));
            }
            if pkt.node_at(hop) != NodeId(target.0) {
                return Err(bad(format!(
                    "packet at walk position {} is not at its target LP {}",
                    hop, target.0
                )));
            }
            if pkt.node_at(pkt.path.len() - 1) != pkt.dst {
                return Err(bad(format!(
                    "packet destination {} is not the end of its walk",
                    pkt.dst.0
                )));
            }
        }
        NetEvent::RtoTimer { .. } | NetEvent::AppTimer { .. } => {}
        NetEvent::StartFlow { dst, .. } | NetEvent::SendDatagram { dst, .. } => {
            if dst.index() >= nodes {
                return Err(bad(format!("traffic event to unknown node {}", dst.0)));
            }
        }
        NetEvent::Fault { kind } => validate_fault_kind(shared, kind)?,
        NetEvent::FluidStart { src, dst, .. } => {
            if src.index() >= nodes || dst.index() >= nodes {
                return Err(bad(format!(
                    "fluid start between unknown nodes {} → {}",
                    src.0, dst.0
                )));
            }
            if target != LpId(FLUID_COORDINATOR.0) {
                return Err(bad("fluid start not targeting the coordinator LP".into()));
            }
        }
        NetEvent::FluidFinish { .. } => {
            if target != LpId(FLUID_COORDINATOR.0) {
                return Err(bad("fluid finish not targeting the coordinator LP".into()));
            }
        }
        NetEvent::FluidFault { kind } => {
            validate_fault_kind(shared, kind)?;
            if target != LpId(FLUID_COORDINATOR.0) {
                return Err(bad("fluid fault not targeting the coordinator LP".into()));
            }
        }
        NetEvent::FluidCapUpdate { slot, .. } => {
            if *slot as usize >= shared.net.links.len() * 2 {
                return Err(bad(format!("fluid cap update on unknown slot {slot}")));
            }
            // Cap updates must land where the slot's packets serialize;
            // `transmit` indexes the coupling arrays blindly there.
            let sender = crate::fluid::slot_sender(shared, *slot);
            if target != LpId(sender.0) {
                return Err(bad(format!(
                    "fluid cap update for slot {slot} not targeting its sender LP"
                )));
            }
        }
        NetEvent::FluidPacketLoad { slot, .. } => {
            if *slot as usize >= shared.net.links.len() * 2 {
                return Err(bad(format!("fluid packet load on unknown slot {slot}")));
            }
            if target != LpId(FLUID_COORDINATOR.0) {
                return Err(bad(
                    "fluid packet load not targeting the coordinator LP".into()
                ));
            }
        }
    }
    Ok(())
}

/// Shared fault-kind range checks for [`NetEvent::Fault`] and
/// [`NetEvent::FluidFault`].
fn validate_fault_kind(shared: &SharedNet, kind: &FaultKind) -> Result<(), MassfError> {
    let bad = |reason: String| MassfError::SnapshotCorrupt {
        section: "events".into(),
        reason,
    };
    match *kind {
        FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
            if l.index() >= shared.net.links.len() {
                return Err(bad(format!("fault event on unknown link {}", l.0)));
            }
        }
        FaultKind::RouterCrash(n) | FaultKind::RouterRecover(n) => {
            if n.index() >= shared.net.node_count() {
                return Err(bad(format!("fault event on unknown node {}", n.0)));
            }
        }
        FaultKind::AsAdjacencyFail { .. } | FaultKind::AsAdjacencyRestore { .. } => {}
    }
    Ok(())
}

impl WorldState {
    /// Merge per-partition exports into the canonical full-world state.
    ///
    /// Partition worlds only advance state they own — flow counters and
    /// route-cache shards at their nodes, transmit horizons at links
    /// whose sending endpoint they own — so counters and busy slots
    /// merge by elementwise max, flow/receiver sets by disjoint union,
    /// and each node's route-cache shard is taken from its owner.
    pub fn merge_partitions(parts: &[WorldState], assignment: &[u32]) -> Result<Self, MassfError> {
        let Some(first) = parts.first() else {
            return Err(MassfError::InvalidConfig(
                "cannot merge zero world-state partitions".into(),
            ));
        };
        let misuse = |reason: String| MassfError::InvalidConfig(reason);
        for p in parts {
            if p.flow_counter.len() != first.flow_counter.len()
                || p.busy_until.len() != first.busy_until.len()
                || p.route_cache.shards.len() != first.route_cache.shards.len()
                || p.max_retries != first.max_retries
            {
                return Err(misuse("world-state partitions disagree on shape".into()));
            }
        }
        if assignment.len() != first.flow_counter.len() {
            return Err(misuse(format!(
                "assignment covers {} nodes, world has {}",
                assignment.len(),
                first.flow_counter.len()
            )));
        }
        let mut flow_counter = first.flow_counter.clone();
        let mut busy_until = first.busy_until.clone();
        let mut profile = first.profile.clone();
        for p in &parts[1..] {
            for (a, b) in flow_counter.iter_mut().zip(&p.flow_counter) {
                *a = (*a).max(*b);
            }
            for (a, b) in busy_until.iter_mut().zip(&p.busy_until) {
                *a = (*a).max(*b);
            }
            profile.merge(&p.profile);
        }
        let mut flows: Vec<FlowEntryState> =
            parts.iter().flat_map(|p| p.flows.iter().cloned()).collect();
        flows.sort_by_key(|f| f.flow);
        if flows.windows(2).any(|w| w[0].flow == w[1].flow) {
            return Err(misuse("two partitions own the same flow".into()));
        }
        let mut receivers: Vec<ReceiverEntryState> = parts
            .iter()
            .flat_map(|p| p.receivers.iter().copied())
            .collect();
        receivers.sort_by_key(|r| (r.node, r.flow));
        if receivers
            .windows(2)
            .any(|w| (w[0].node, w[0].flow) == (w[1].node, w[1].flow))
        {
            return Err(misuse("two partitions own the same receiver".into()));
        }
        let shards = first
            .route_cache
            .shards
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let owner = assignment[i] as usize;
                parts
                    .get(owner)
                    .map(|p| p.route_cache.shards[i].clone())
                    .ok_or_else(|| {
                        misuse(format!("node {i} assigned to missing partition {owner}"))
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;

        // Fluid coordinator state comes from the partition owning the
        // coordinator LP; everyone else must have exported it empty.
        let fluid_owner = assignment
            .get(FLUID_COORDINATOR.index())
            .map(|&p| p as usize);
        let fluid = match fluid_owner {
            Some(owner) => parts.get(owner).map(|p| p.fluid.clone()).ok_or_else(|| {
                misuse(format!(
                    "fluid coordinator assigned to missing partition {owner}"
                ))
            })?,
            None => FluidWorldState::default(),
        };
        for (i, p) in parts.iter().enumerate() {
            if fluid_owner != Some(i) && !p.fluid.is_empty() {
                return Err(misuse(format!(
                    "partition {i} exported fluid coordinator state it does not own"
                )));
            }
        }
        // Packet-side coupling arrays: each partition advances only the
        // slots whose sender node it owns and leaves the rest at their
        // defaults, so min-merge (MAX-default fields) / max-merge
        // (0-default fields) reconstructs the full arrays exactly.
        let slots = busy_until.len();
        let arrays_len_ok = |v: usize| -> bool { v == 0 || v == slots };
        for (i, p) in parts.iter().enumerate() {
            if !arrays_len_ok(p.fluid_seen_bps.len())
                || p.fluid_est_start.len() != p.fluid_seen_bps.len()
                || p.fluid_est_bytes.len() != p.fluid_seen_bps.len()
                || p.fluid_est_reported.len() != p.fluid_seen_bps.len()
            {
                return Err(misuse(format!(
                    "partition {i} fluid coupling arrays have inconsistent lengths"
                )));
            }
        }
        let any_coupling = parts.iter().any(|p| !p.fluid_seen_bps.is_empty());
        let (mut seen, mut est_start, mut est_bytes, mut est_reported) = if any_coupling {
            (
                vec![u64::MAX; slots],
                vec![SimTime::MAX; slots],
                vec![0u64; slots],
                vec![0u64; slots],
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new(), Vec::new())
        };
        for p in parts {
            for (a, b) in seen.iter_mut().zip(&p.fluid_seen_bps) {
                *a = (*a).min(*b);
            }
            for (a, b) in est_start.iter_mut().zip(&p.fluid_est_start) {
                *a = (*a).min(*b);
            }
            for (a, b) in est_bytes.iter_mut().zip(&p.fluid_est_bytes) {
                *a = (*a).max(*b);
            }
            for (a, b) in est_reported.iter_mut().zip(&p.fluid_est_reported) {
                *a = (*a).max(*b);
            }
        }

        Ok(WorldState {
            flow_counter,
            busy_until,
            flows,
            receivers,
            route_cache: RouteCacheState {
                capacity: first.route_cache.capacity,
                shards,
            },
            profile,
            max_retries: first.max_retries,
            fluid,
            fluid_seen_bps: seen,
            fluid_est_start: est_start,
            fluid_est_bytes: est_bytes,
            fluid_est_reported: est_reported,
        })
    }
}

impl<A: AppLogic> NetWorld<A> {
    /// Export this world's mutable state in canonical form (see
    /// [`WorldState`]). For a partition world the export covers only
    /// what the partition owns; merge the partitions' exports with
    /// [`WorldState::merge_partitions`].
    pub fn export_state(&self) -> WorldState {
        let s = &self.state;
        let mut flows = Vec::new();
        for (node, index) in s.flows.by_node.iter().enumerate() {
            for &(counter, slot) in index {
                let cold = &s.flows.cold[slot as usize];
                flows.push(FlowEntryState {
                    // simlint: allow(cast-lossy) -- node index bounded by the u32 node-id space
                    flow: FlowId::new(NodeId(node as u32), counter),
                    sender: s.flows.hot[slot as usize].export_state(),
                    path: cold.path.to_vec(),
                    dst: cold.dst,
                    armed_epoch: cold.armed_epoch,
                    unroutable: cold.unroutable,
                });
            }
        }
        // Per-node flow indexes are counter-sorted and FlowId orders by
        // (node, counter), so the concatenation is already sorted.
        debug_assert!(flows.windows(2).all(|w| w[0].flow < w[1].flow));
        let mut receivers = Vec::new();
        for (node, index) in s.receivers.by_node.iter().enumerate() {
            for &(flow, slot) in index {
                let r = &s.receivers.state[slot as usize];
                receivers.push(ReceiverEntryState {
                    // simlint: allow(cast-lossy) -- node index bounded by the u32 node-id space
                    node: NodeId(node as u32),
                    flow,
                    rcv_next: r.rcv_next,
                    segments_seen: r.segments_seen,
                });
            }
        }
        WorldState {
            flow_counter: s.flow_counter.clone(),
            busy_until: s.busy_until.clone(),
            flows,
            receivers,
            route_cache: s.route_cache.export_state(),
            profile: self.profile.clone(),
            max_retries: s.max_retries,
            fluid: s
                .fluid
                .as_deref()
                .map(FluidState::export)
                .unwrap_or_default(),
            fluid_seen_bps: s.coupling.fluid_bps.clone(),
            fluid_est_start: s.coupling.est_start.clone(),
            fluid_est_bytes: s.coupling.est_bytes.clone(),
            fluid_est_reported: s.coupling.est_reported.clone(),
        }
    }

    /// Check the fluid solver's max-min fairness invariants (test
    /// hook; `Ok` when the world carries no fluid state).
    #[doc(hidden)]
    pub fn check_fluid_invariants(&self) -> Result<(), String> {
        match self.state.fluid.as_deref() {
            Some(fl) => fl.check_invariants(),
            None => Ok(()),
        }
    }

    /// Number of live fluid flows at the coordinator (test hook).
    #[doc(hidden)]
    pub fn fluid_live_flows(&self) -> usize {
        self.state
            .fluid
            .as_deref()
            .map(FluidState::live_flows)
            .unwrap_or(0)
    }

    /// Rebuild a full world from a canonical state, for sequential
    /// execution. The state is validated as untrusted input: any
    /// violated invariant yields [`MassfError::SnapshotCorrupt`], never
    /// a panic and never a silently inconsistent world.
    pub fn restore(shared: Arc<SharedNet>, app: A, state: &WorldState) -> Result<Self, MassfError> {
        Self::restore_filtered(shared, app, state, None)
    }

    /// Rebuild one partition's world from a canonical state: only the
    /// flows, receivers, and route-cache shards owned by `partition`
    /// under `assignment` are loaded (counters and busy horizons are
    /// kept in full — non-owners never advance them, so the later
    /// max-merge is exact).
    pub fn restore_partition(
        shared: Arc<SharedNet>,
        app: A,
        state: &WorldState,
        assignment: &[u32],
        partition: u32,
    ) -> Result<Self, MassfError> {
        if assignment.len() != shared.net.node_count() {
            return Err(MassfError::InvalidConfig(format!(
                "assignment covers {} nodes, network has {}",
                assignment.len(),
                shared.net.node_count()
            )));
        }
        Self::restore_filtered(shared, app, state, Some((assignment, partition)))
    }

    fn restore_filtered(
        shared: Arc<SharedNet>,
        app: A,
        state: &WorldState,
        filter: Option<(&[u32], u32)>,
    ) -> Result<Self, MassfError> {
        let bad = |reason: String| MassfError::SnapshotCorrupt {
            section: "world".into(),
            reason,
        };
        let nodes = shared.net.node_count();
        let links = shared.net.links.len();
        if state.flow_counter.len() != nodes {
            return Err(bad(format!(
                "flow counters cover {} nodes, network has {nodes}",
                state.flow_counter.len()
            )));
        }
        if state.busy_until.len() != links * 2 {
            return Err(bad(format!(
                "busy horizons cover {} slots, network has {}",
                state.busy_until.len(),
                links * 2
            )));
        }
        if state.profile.node_packets.len() != nodes || state.profile.link_packets.len() != links {
            return Err(bad("profile dimensions do not match the network".into()));
        }
        if !state.route_cache.shards.is_empty() && state.route_cache.shards.len() != nodes {
            return Err(bad(format!(
                "route cache has {} shards, network has {nodes} nodes",
                state.route_cache.shards.len()
            )));
        }
        let owned = |node: NodeId| match filter {
            Some((assignment, p)) => assignment[node.index()] == p,
            None => true,
        };

        let route_cache = match filter {
            Some(_) => {
                // Unowned shards start empty: their contents belong to
                // (and will be exported by) other partitions.
                let filtered = RouteCacheState {
                    capacity: state.route_cache.capacity,
                    shards: state
                        .route_cache
                        .shards
                        .iter()
                        .enumerate()
                        .map(|(i, sh)| {
                            // simlint: allow(cast-lossy) -- node index bounded by the u32 node-id space
                            if owned(NodeId(i as u32)) {
                                sh.clone()
                            } else {
                                RouteCacheShardState {
                                    entries: Vec::new(),
                                    queue: Vec::new(),
                                    stamp: 0,
                                }
                            }
                        })
                        .collect(),
                };
                RouteCache::from_state(&filtered)?
            }
            None => RouteCache::from_state(&state.route_cache)?,
        };

        let mut flows = FlowSlab::new(nodes);
        let mut prev: Option<FlowId> = None;
        for f in &state.flows {
            if prev.is_some_and(|p| f.flow <= p) {
                return Err(bad("flow entries are not strictly sorted by id".into()));
            }
            prev = Some(f.flow);
            let src = f.flow.source();
            if src.index() >= nodes {
                return Err(bad(format!("flow owned by unknown node {}", src.0)));
            }
            if flow_counter_of(f.flow) >= state.flow_counter[src.index()] {
                return Err(bad(format!(
                    "flow counter {} not yet issued by node {}",
                    flow_counter_of(f.flow),
                    src.0
                )));
            }
            validate_route(&shared, &f.path, "world")?;
            if f.path[0] != src || *f.path.last().expect("len ≥ 2 checked") != f.dst {
                return Err(bad(format!(
                    "flow path endpoints do not match source {} / destination {}",
                    src.0, f.dst.0
                )));
            }
            let sender = TcpSender::from_state(&f.sender)?;
            if sender.done || sender.aborted {
                return Err(bad("finished flow serialized as live".into()));
            }
            if owned(src) {
                flows.insert(
                    src,
                    f.flow,
                    sender,
                    FlowCold {
                        path: Arc::from(f.path.as_slice()),
                        dst: f.dst,
                        armed_epoch: f.armed_epoch,
                        unroutable: f.unroutable,
                    },
                );
            }
        }

        let mut receivers = ReceiverSlab::new(nodes);
        let mut prev: Option<(NodeId, FlowId)> = None;
        for r in &state.receivers {
            if prev.is_some_and(|p| (r.node, r.flow) <= p) {
                return Err(bad("receiver entries are not strictly sorted".into()));
            }
            prev = Some((r.node, r.flow));
            if r.node.index() >= nodes {
                return Err(bad(format!("receiver at unknown node {}", r.node.0)));
            }
            if owned(r.node) {
                let entry = receivers.entry(r.node, r.flow);
                entry.rcv_next = r.rcv_next;
                entry.segments_seen = r.segments_seen;
            }
        }

        // Packet-side fluid coupling: all four arrays empty (never
        // subscribed) or all 2·links long. A partition keeps only the
        // slots whose sending node it owns; the rest revert to their
        // defaults so the later min/max merge is exact.
        if state.fluid_seen_bps.len() != state.fluid_est_start.len()
            || state.fluid_seen_bps.len() != state.fluid_est_bytes.len()
            || state.fluid_seen_bps.len() != state.fluid_est_reported.len()
        {
            return Err(bad("fluid coupling arrays have inconsistent lengths".into()));
        }
        if !state.fluid_seen_bps.is_empty() && state.fluid_seen_bps.len() != links * 2 {
            return Err(bad(format!(
                "fluid coupling covers {} slots, network has {}",
                state.fluid_seen_bps.len(),
                links * 2
            )));
        }
        let mut coupling = FluidCoupling {
            fluid_bps: state.fluid_seen_bps.clone(),
            est_start: state.fluid_est_start.clone(),
            est_bytes: state.fluid_est_bytes.clone(),
            est_reported: state.fluid_est_reported.clone(),
        };
        if filter.is_some() {
            for s in 0..coupling.fluid_bps.len() {
                // simlint: allow(cast-lossy) -- slot count bounded by 2·links ≤ u32 space
                if !owned(crate::fluid::slot_sender(&shared, s as u32)) {
                    coupling.fluid_bps[s] = u64::MAX;
                    coupling.est_start[s] = SimTime::MAX;
                    coupling.est_bytes[s] = 0;
                    coupling.est_reported[s] = 0;
                }
            }
        }

        // Coordinator-side fluid state: loaded only by the coordinator
        // LP's owner; membership and aggregates are rebuilt, nothing is
        // emitted (pending alarms ride the event snapshot).
        let fluid = if !state.fluid.is_empty() && owned(FLUID_COORDINATOR) {
            if FLUID_COORDINATOR.index() >= nodes {
                return Err(bad("fluid state without a coordinator node".into()));
            }
            let issued = state.flow_counter[FLUID_COORDINATOR.index()];
            Some(Box::new(FluidState::restore(
                &shared,
                &state.fluid,
                issued,
            )?))
        } else {
            None
        };

        Ok(NetWorld {
            profile: ProfileData::new(nodes, links),
            state: NodeStates {
                flow_counter: state.flow_counter.clone(),
                busy_until: state.busy_until.clone(),
                flows,
                receivers,
                route_cache,
                action_scratch: Vec::new(),
                max_retries: state.max_retries,
                coupling,
                fluid,
            },
            shared,
            app,
        })
    }
}

impl<A: AppLogic> Model for NetWorld<A> {
    type Event = NetEvent;

    fn handle(
        &mut self,
        target: LpId,
        now: SimTime,
        event: NetEvent,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        let node = NodeId(target.0);
        let shared = &*self.shared;
        let state = &mut self.state;
        let profile = &mut self.profile;
        let app = &mut self.app;

        match event {
            NetEvent::Arrive(pkt) => {
                // A packet that was in flight when its link or either
                // endpoint died is lost (checked at arrival time; `hop`
                // was already advanced past the traversed link).
                if let Some(f) = &shared.faults {
                    let prev = pkt.node_at(pkt.hop as usize - 1);
                    let link_up = shared
                        .link_between(prev, node)
                        .is_some_and(|l| f.is_link_up(l.id, now));
                    if !link_up || !f.is_node_up(node, now) {
                        profile.fault_drops += 1;
                        return;
                    }
                }
                profile.node_packets[node.index()] += 1;
                if !pkt.at_destination() {
                    transmit(
                        shared,
                        &mut state.busy_until,
                        &mut state.coupling,
                        profile,
                        out,
                        pkt,
                        now,
                    );
                    return;
                }
                match pkt.kind {
                    PacketKind::Data => {
                        let recv = state.receivers.entry(node, pkt.flow);
                        let ack = recv.on_data(pkt.seq);
                        // The ACK walks the *same* interned path in
                        // reverse (kind = Ack); no second allocation.
                        let ack_pkt = Packet {
                            flow: pkt.flow,
                            meta: 0,
                            path: pkt.path.clone(),
                            dst: pkt.flow.source(),
                            seq: ack,
                            size_bytes: ACK_BYTES,
                            hop: 0,
                            kind: PacketKind::Ack,
                        };
                        transmit(
                            shared,
                            &mut state.busy_until,
                            &mut state.coupling,
                            profile,
                            out,
                            ack_pkt,
                            now,
                        );
                    }
                    PacketKind::Ack => {
                        let Some(slot) = state.flows.slot_of(node, pkt.flow) else {
                            return; // flow already completed
                        };
                        let mut actions = std::mem::take(&mut state.action_scratch);
                        state.flows.hot[slot].on_ack(pkt.seq, now, &mut actions);
                        let (path, dst) = {
                            let cold = &state.flows.cold[slot];
                            (cold.path.clone(), cold.dst)
                        };
                        let outcome = apply_actions(
                            shared,
                            &mut state.busy_until,
                            &mut state.coupling,
                            profile,
                            out,
                            pkt.flow,
                            &path,
                            dst,
                            &mut actions,
                            now,
                        );
                        state.action_scratch = actions;
                        match outcome {
                            FlowOutcome::Completed => {
                                profile.completed_flows += 1;
                                profile.completed_segments +=
                                    state.flows.hot[slot].total_segments as u64;
                                // NOTE: the receiver-side entry lives at
                                // the *destination* LP and must not be
                                // touched from here (LP locality); it is
                                // simply left behind, bounded by the
                                // flow count.
                                state.flows.free(node, pkt.flow);
                                let mut api = SimApi {
                                    host: node,
                                    now,
                                    shared,
                                    state,
                                    profile,
                                    emitter: out,
                                };
                                app.on_flow_complete(node, pkt.flow, &mut api);
                            }
                            // ACKs acknowledge progress; they never
                            // exhaust the retry budget.
                            FlowOutcome::Aborted => unreachable!("ACKs cannot abort a flow"),
                            FlowOutcome::Active => {
                                arm_timer(
                                    out,
                                    node,
                                    pkt.flow,
                                    &state.flows.hot[slot],
                                    &mut state.flows.cold[slot].armed_epoch,
                                );
                            }
                        }
                    }
                    PacketKind::Datagram => {
                        let payload = pkt.size_bytes - HEADER_BYTES;
                        let meta = pkt.meta;
                        let mut api = SimApi {
                            host: node,
                            now,
                            shared,
                            state,
                            profile,
                            emitter: out,
                        };
                        app.on_datagram(node, pkt.flow, payload, meta, &mut api);
                    }
                }
            }
            NetEvent::RtoTimer { flow, epoch } => {
                let Some(slot) = state.flows.slot_of(node, flow) else {
                    return;
                };
                if state.flows.hot[slot].timer_epoch != epoch {
                    return; // stale timer
                }
                state.flows.cold[slot].armed_epoch = u32::MAX;
                // Under fault injection a timeout may mean the path died:
                // re-resolve against the current epoch and fail over to
                // the reconverged path before retransmitting. (Skipped
                // entirely in fault-free runs, whose behavior must not
                // change.)
                if shared.faults.is_some() {
                    let dst = state.flows.cold[slot].dst;
                    match route_arc(shared, &mut state.route_cache, profile, node, dst, now) {
                        Some(path) => {
                            let cold = &mut state.flows.cold[slot];
                            cold.unroutable = false;
                            if path != cold.path {
                                cold.path = path;
                            }
                        }
                        None => state.flows.cold[slot].unroutable = true,
                    }
                }
                let mut actions = std::mem::take(&mut state.action_scratch);
                state.flows.hot[slot].on_timeout(&mut actions);
                let (path, dst) = {
                    let cold = &state.flows.cold[slot];
                    (cold.path.clone(), cold.dst)
                };
                let outcome = apply_actions(
                    shared,
                    &mut state.busy_until,
                    &mut state.coupling,
                    profile,
                    out,
                    flow,
                    &path,
                    dst,
                    &mut actions,
                    now,
                );
                state.action_scratch = actions;
                match outcome {
                    FlowOutcome::Completed => unreachable!("timeout cannot complete a flow"),
                    FlowOutcome::Aborted => {
                        profile.aborted_flows += 1;
                        let reason = if state.flows.cold[slot].unroutable {
                            AbortReason::Unroutable
                        } else {
                            AbortReason::RetryBudgetExhausted
                        };
                        // As with completion, the receiver-side entry at
                        // the destination LP is left behind.
                        state.flows.free(node, flow);
                        let mut api = SimApi {
                            host: node,
                            now,
                            shared,
                            state,
                            profile,
                            emitter: out,
                        };
                        app.on_flow_aborted(node, flow, reason, &mut api);
                    }
                    FlowOutcome::Active => {
                        arm_timer(
                            out,
                            node,
                            flow,
                            &state.flows.hot[slot],
                            &mut state.flows.cold[slot].armed_epoch,
                        );
                    }
                }
            }
            NetEvent::AppTimer { token } => {
                let mut api = SimApi {
                    host: node,
                    now,
                    shared,
                    state,
                    profile,
                    emitter: out,
                };
                app.on_timer(node, token, &mut api);
            }
            NetEvent::StartFlow { dst, bytes } => {
                start_tcp_flow_inner(shared, state, profile, out, node, dst, bytes, now);
            }
            NetEvent::SendDatagram { dst, bytes, meta } => {
                let Some(path) = route_arc(shared, &mut state.route_cache, profile, node, dst, now)
                else {
                    profile.unroutable += 1;
                    return;
                };
                let counter = &mut state.flow_counter[node.index()];
                let flow = FlowId::new(node, *counter);
                *counter += 1;
                let pkt = Packet {
                    flow,
                    meta,
                    path,
                    dst,
                    seq: 0,
                    size_bytes: bytes + HEADER_BYTES,
                    hop: 0,
                    kind: PacketKind::Datagram,
                };
                transmit(
                    shared,
                    &mut state.busy_until,
                    &mut state.coupling,
                    profile,
                    out,
                    pkt,
                    now,
                );
            }
            NetEvent::Fault { kind: _kind } => {
                profile.fault_events += 1;
                // Pay the reconvergence (SPT/RIB rebuild) at fault time
                // rather than at the next routed packet. Idempotent and
                // deterministic: the build is a pure function of the
                // epoch, whichever partition triggers it first.
                if let Some(f) = &shared.faults {
                    f.reconverge_at(now);
                }
            }
            NetEvent::FluidStart {
                src,
                dst,
                bytes,
                peak_bps,
            } => {
                // Coordinator state is allocated on first use so
                // packet-only scenarios never pay for it.
                let fl = state
                    .fluid
                    .get_or_insert_with(|| Box::new(FluidState::new(shared)));
                fl.start(
                    shared,
                    now,
                    src,
                    dst,
                    bytes,
                    peak_bps,
                    &mut state.flow_counter[FLUID_COORDINATOR.index()],
                    profile,
                    out,
                );
            }
            NetEvent::FluidFinish { flow, epoch } => {
                let Some(fl) = state.fluid.as_deref_mut() else {
                    return;
                };
                if let Some((src, dst)) = fl.finish(shared, now, flow, epoch, profile, out) {
                    let mut api = SimApi {
                        host: node,
                        now,
                        shared,
                        state,
                        profile,
                        emitter: out,
                    };
                    app.on_fluid_complete(src, flow, dst, &mut api);
                }
            }
            NetEvent::FluidFault { kind } => {
                let Some(fl) = state.fluid.as_deref_mut() else {
                    return;
                };
                let aborted = fl.fault(shared, now, kind, profile, out);
                for (flow, src, dst) in aborted {
                    let mut api = SimApi {
                        host: node,
                        now,
                        shared,
                        state,
                        profile,
                        emitter: out,
                    };
                    app.on_fluid_aborted(src, flow, dst, &mut api);
                }
            }
            NetEvent::FluidCapUpdate { slot, fluid_bps } => {
                state
                    .coupling
                    .subscribe(shared.net.links.len() * 2, slot, fluid_bps);
            }
            NetEvent::FluidPacketLoad { slot, bps } => {
                if let Some(fl) = state.fluid.as_deref_mut() {
                    fl.packet_load(shared, now, slot, bps, profile, out);
                }
            }
        }
    }
}

/// Expected number of kernel events for a clean one-segment exchange:
/// data packet arrivals at every hop plus ACK arrivals back.
pub fn events_per_roundtrip(hops: usize) -> u64 {
    2 * hops as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::segments_for;
    use massf_engine::run_sequential;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{AsId, NodeKind, Point};

    /// host A — r1 — r2 — host B with configurable bottleneck.
    fn dumbbell(bottleneck_bps: f64) -> (Arc<SharedNet>, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r1 = net.add_node(NodeKind::Router, Point::new(10.0, 0.0), AsId(0));
        let r2 = net.add_node(NodeKind::Router, Point::new(20.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(30.0, 0.0), AsId(0));
        net.add_link(a, r1, 1e9, 0.1);
        net.add_link(r1, r2, bottleneck_bps, 1.0);
        net.add_link(r2, b, 1e9, 0.1);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        (SharedNet::new(net, resolver), a, b)
    }

    /// Run one TCP flow A→B of `bytes` and return (profile, end stats).
    fn run_flow(
        shared: Arc<SharedNet>,
        a: NodeId,
        b: NodeId,
        bytes: u64,
        end: SimTime,
    ) -> (ProfileData, massf_engine::ExecutionStats) {
        let mut world = NetWorld::new(shared, NoApp);
        let n = world.shared.lp_count();
        let stats = run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::StartFlow { dst: b, bytes },
            )],
            end,
        );
        (world.profile, stats)
    }

    #[test]
    fn single_flow_completes() {
        let (shared, a, b) = dumbbell(100e6);
        let (profile, _) = run_flow(shared, a, b, 50_000, SimTime::from_secs(10));
        assert_eq!(profile.completed_flows, 1);
        assert_eq!(profile.completed_segments, segments_for(50_000) as u64);
        assert_eq!(profile.drops, 0, "no loss expected at 100 Mbps");
        assert_eq!(profile.unroutable, 0);
    }

    #[test]
    fn packets_traverse_every_hop() {
        let (shared, a, b) = dumbbell(100e6);
        let segs = segments_for(10_000) as u64; // 7 segments
        let (profile, _) = run_flow(shared, a, b, 10_000, SimTime::from_secs(10));
        // Each data segment arrives at r1, r2, B; each ACK at r2, r1, A.
        // 3 links × (segs data + segs acks) packets.
        for l in 0..3 {
            assert_eq!(
                profile.link_packets[l],
                2 * segs,
                "link {l}: {:?}",
                profile.link_packets
            );
        }
        // Routers see data+acks; hosts see acks (A) / data (B).
        assert_eq!(profile.node_packets[1], 2 * segs);
        assert_eq!(profile.node_packets[2], 2 * segs);
        assert_eq!(profile.node_packets[0], segs);
        assert_eq!(profile.node_packets[3], segs);
    }

    #[test]
    fn transfer_time_tracks_bottleneck_bandwidth() {
        // 1 MB over ~10 Mbps bottleneck ≈ 0.84 s of pure serialization;
        // with slow start and 2.4 ms RTT it lands within a small factor.
        let (shared, a, b) = dumbbell(10e6);
        let mut world = NetWorld::new(shared, NoApp);
        let n = world.shared.lp_count();
        let stats = run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::StartFlow {
                    dst: b,
                    bytes: 1_000_000,
                },
            )],
            SimTime::from_secs(60),
        );
        assert_eq!(world.profile.completed_flows, 1);
        // Sanity: total events bounded and nonzero.
        assert!(stats.total_events > 1000);
    }

    #[test]
    fn narrow_bottleneck_drops_but_still_completes() {
        // 1 Mbps bottleneck with 50 ms buffer (≈ 6 kB) forces drops once
        // slow start overshoots, but retransmission recovers.
        let (shared, a, b) = dumbbell(1e6);
        let (profile, _) = run_flow(shared, a, b, 200_000, SimTime::from_secs(60));
        assert!(profile.drops > 0, "expected drop-tail losses");
        assert_eq!(profile.completed_flows, 1, "TCP must recover from loss");
    }

    #[test]
    fn udp_datagram_delivered_to_app() {
        let (shared, a, b) = dumbbell(100e6);
        struct Sink(Vec<(NodeId, u32, u64)>);
        impl AppLogic for Sink {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
            fn on_datagram(
                &mut self,
                h: NodeId,
                _f: FlowId,
                bytes: u32,
                meta: u64,
                _: &mut SimApi<'_, '_>,
            ) {
                self.0.push((h, bytes, meta));
            }
        }
        let mut world = NetWorld::new(shared, Sink(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::from_ms(1),
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 512,
                    meta: 77,
                },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![(b, 512, 77)]);
    }

    #[test]
    fn app_timer_fires() {
        let (shared, a, _) = dumbbell(100e6);
        struct T(Vec<(u64, SimTime)>);
        impl AppLogic for T {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
                self.0.push((token, api.now()));
                if token < 3 {
                    api.set_timer(SimTime::from_ms(10), token + 1);
                }
            }
        }
        let mut world = NetWorld::new(shared, T(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::from_ms(5),
                LpId(a.0),
                NetEvent::AppTimer { token: 1 },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(
            world.app.0,
            vec![
                (1, SimTime::from_ms(5)),
                (2, SimTime::from_ms(15)),
                (3, SimTime::from_ms(25)),
            ]
        );
    }

    #[test]
    fn self_flow_rejected_as_unroutable() {
        let (shared, a, _) = dumbbell(100e6);
        let (profile, _) = run_flow(shared, a, a, 1000, SimTime::from_secs(1));
        assert_eq!(profile.completed_flows, 0);
        assert_eq!(profile.unroutable, 1);
    }

    #[test]
    fn fifo_links_never_reorder() {
        // Two back-to-back datagrams must arrive in order even though the
        // first is larger (store-and-forward FIFO).
        let (shared, a, b) = dumbbell(1e6);
        struct Order(Vec<u32>);
        impl AppLogic for Order {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
            fn on_datagram(
                &mut self,
                _: NodeId,
                _: FlowId,
                bytes: u32,
                _meta: u64,
                _: &mut SimApi<'_, '_>,
            ) {
                self.0.push(bytes);
            }
        }
        let mut world = NetWorld::new(shared, Order(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![
                (
                    SimTime::ZERO,
                    LpId(a.0),
                    NetEvent::SendDatagram {
                        dst: b,
                        bytes: 1400,
                        meta: 0,
                    },
                ),
                (
                    SimTime::from_us(1),
                    LpId(a.0),
                    NetEvent::SendDatagram {
                        dst: b,
                        bytes: 40,
                        meta: 0,
                    },
                ),
            ],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![1400, 40]);
    }

    #[test]
    fn port_table_matches_adjacency() {
        let (shared, _, _) = dumbbell(100e6);
        for link in &shared.net.links {
            assert_eq!(
                shared.link_between(link.a, link.b).map(|l| l.id),
                Some(link.id)
            );
            assert_eq!(
                shared.link_between(link.b, link.a).map(|l| l.id),
                Some(link.id)
            );
        }
        // Non-adjacent pairs miss: hosts a (0) and b (3) are 3 hops apart.
        assert!(shared.link_between(NodeId(0), NodeId(3)).is_none());
        assert!(shared.link_between(NodeId(0), NodeId(2)).is_none());
    }

    fn seeded_resume(
        initial: Vec<(SimTime, LpId, NetEvent)>,
        n: usize,
    ) -> massf_engine::ResumeState<NetEvent> {
        let mut events = massf_engine::seed_events(initial);
        events.sort_unstable();
        massf_engine::ResumeState {
            events,
            counters: vec![0; n],
        }
    }

    #[test]
    fn world_state_round_trip_preserves_execution() {
        use massf_engine::run_sequential_resumable;
        let (shared, a, b) = dumbbell(10e6);
        let n = shared.lp_count();
        let initial = vec![(
            SimTime::ZERO,
            LpId(a.0),
            NetEvent::StartFlow {
                dst: b,
                bytes: 500_000,
            },
        )];
        let end = SimTime::from_secs(5);

        // Straight-through reference.
        let mut whole = NetWorld::new(shared.clone(), NoApp);
        run_sequential(&mut whole, n, initial.clone(), end);

        // Split run: stop at 100 ms (mid-flow), snapshot, continue both
        // the original world and a restored copy.
        let mut original = NetWorld::new(shared.clone(), NoApp);
        let (_, frontier) = run_sequential_resumable(
            &mut original,
            n,
            seeded_resume(initial, n),
            SimTime::from_ms(100),
        )
        .expect("valid frontier");
        let snap = original.export_state();
        assert!(!snap.flows.is_empty(), "flow must still be live at 100 ms");

        let mut restored = NetWorld::restore(shared, NoApp, &snap).expect("valid snapshot");
        // Snapshot → restore → snapshot is exact, except the restored
        // world's own profile starts at zero.
        let mut re_export = restored.export_state();
        assert_eq!(re_export.profile, ProfileData::new(n, 3));
        re_export.profile = snap.profile.clone();
        assert_eq!(re_export, snap);

        let (_, f2) = run_sequential_resumable(&mut restored, n, frontier.clone(), end)
            .expect("restored world resumes");
        let (_, f1) =
            run_sequential_resumable(&mut original, n, frontier, end).expect("original resumes");
        assert_eq!(f1.events.len(), f2.events.len());

        // The continued-original equals the straight-through run...
        assert_eq!(original.export_state(), whole.export_state());
        // ...and the restored world matches except for profile
        // additivity: snapshot profile + suffix profile = whole profile.
        let mut final_restored = restored.export_state();
        let mut cumulative = snap.profile.clone();
        cumulative.merge(&final_restored.profile);
        assert_eq!(cumulative, whole.profile);
        final_restored.profile = whole.profile.clone();
        assert_eq!(final_restored, whole.export_state());
    }

    #[test]
    fn partition_exports_merge_to_sequential_state() {
        use massf_engine::{run_sequential_resumable, try_run_parallel_resumable};
        let (shared, a, b) = dumbbell(10e6);
        let n = shared.lp_count();
        let initial = vec![
            (
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::StartFlow {
                    dst: b,
                    bytes: 300_000,
                },
            ),
            (
                SimTime::from_ms(1),
                LpId(b.0),
                NetEvent::StartFlow {
                    dst: a,
                    bytes: 200_000,
                },
            ),
        ];
        let mid = SimTime::from_ms(150);

        let mut seq = NetWorld::new(shared.clone(), NoApp);
        run_sequential_resumable(&mut seq, n, seeded_resume(initial.clone(), n), mid)
            .expect("sequential segment");
        let seq_state = seq.export_state();

        // Cut between r1 and r2 (the only cross link, 1 ms latency).
        let assignment = [0u32, 0, 1, 1];
        let shards = vec![
            NetWorld::new(shared.clone(), NoApp),
            NetWorld::new(shared, NoApp),
        ];
        let (shards, _, _) = try_run_parallel_resumable(
            shards,
            n,
            &assignment,
            seeded_resume(initial, n),
            mid,
            SimTime::from_ms(1),
        )
        .expect("parallel segment");
        let parts: Vec<WorldState> = shards.iter().map(|w| w.export_state()).collect();
        let merged = WorldState::merge_partitions(&parts, &assignment).expect("disjoint parts");
        assert_eq!(merged, seq_state);
    }

    #[test]
    fn hostile_world_states_are_rejected() {
        use massf_engine::run_sequential_resumable;
        let (shared, a, b) = dumbbell(10e6);
        let n = shared.lp_count();
        let initial = vec![(
            SimTime::ZERO,
            LpId(a.0),
            NetEvent::StartFlow {
                dst: b,
                bytes: 500_000,
            },
        )];
        let mut w = NetWorld::new(shared.clone(), NoApp);
        run_sequential_resumable(&mut w, n, seeded_resume(initial, n), SimTime::from_ms(100))
            .expect("segment");
        let good = w.export_state();
        assert!(!good.flows.is_empty());

        let reject = |state: &WorldState, what: &str| match NetWorld::restore(
            shared.clone(),
            NoApp,
            state,
        ) {
            Err(MassfError::SnapshotCorrupt { .. }) => {}
            Err(other) => panic!("{what}: expected SnapshotCorrupt, got {other}"),
            Ok(_) => panic!("{what}: hostile state must be rejected"),
        };

        let mut truncated_counters = good.clone();
        truncated_counters.flow_counter.pop();
        reject(&truncated_counters, "truncated flow counters");

        let mut wrong_busy = good.clone();
        wrong_busy.busy_until.push(SimTime::ZERO);
        reject(&wrong_busy, "oversized busy horizon");

        let mut broken_path = good.clone();
        broken_path.flows[0].path = vec![a, b]; // hosts are not adjacent
        reject(&broken_path, "non-adjacent path hop");

        let mut unissued_flow = good.clone();
        unissued_flow.flow_counter[a.index()] = 0;
        reject(&unissued_flow, "live flow beyond its host's counter");

        let mut nan_cwnd = good.clone();
        nan_cwnd.flows[0].sender.cwnd = f64::NAN;
        reject(&nan_cwnd, "NaN congestion window");

        let mut dup_receiver = good.clone();
        if let Some(&r) = dup_receiver.receivers.first() {
            dup_receiver.receivers.push(r); // breaks strict sorting
            reject(&dup_receiver, "duplicate receiver entry");
        }

        let mut bad_profile = good.clone();
        bad_profile.profile.node_packets.pop();
        reject(&bad_profile, "profile dimension mismatch");

        // The unmodified export restores fine.
        assert!(NetWorld::restore(shared, NoApp, &good).is_ok());
    }

    #[test]
    fn in_flight_event_validation_catches_hostile_packets() {
        let (shared, a, b) = dumbbell(10e6);
        let r1 = NodeId(1);
        let path: Arc<[NodeId]> = vec![a, r1, NodeId(2), b].into();
        let pkt = |hop: u16, path: Arc<[NodeId]>| Packet {
            flow: FlowId::new(a, 0),
            meta: 0,
            path,
            dst: b,
            seq: 0,
            size_bytes: 100,
            hop,
            kind: PacketKind::Data,
        };

        // A well-formed in-flight packet passes.
        let ok = NetEvent::Arrive(pkt(1, path.clone()));
        assert!(validate_net_event(&shared, LpId(r1.0), &ok).is_ok());

        let cases: Vec<(LpId, NetEvent, &str)> = vec![
            (LpId(99), NetEvent::AppTimer { token: 0 }, "unknown LP"),
            (
                LpId(r1.0),
                NetEvent::Arrive(pkt(0, path.clone())),
                "hop 0 would underflow the previous-node lookup",
            ),
            (
                LpId(r1.0),
                NetEvent::Arrive(pkt(4, path.clone())),
                "hop beyond the walk",
            ),
            (
                LpId(b.0),
                NetEvent::Arrive(pkt(1, path.clone())),
                "packet not at its target LP",
            ),
            (
                LpId(r1.0),
                NetEvent::Arrive(pkt(1, vec![a, b].into())),
                "non-adjacent path",
            ),
            (
                LpId(a.0),
                NetEvent::StartFlow {
                    dst: NodeId(77),
                    bytes: 1,
                },
                "traffic to unknown node",
            ),
            (
                LpId(a.0),
                NetEvent::Fault {
                    kind: FaultKind::LinkDown(massf_topology::LinkId(9)),
                },
                "fault on unknown link",
            ),
        ];
        for (lp, ev, what) in cases {
            match validate_net_event(&shared, lp, &ev) {
                Err(MassfError::SnapshotCorrupt { section, .. }) => {
                    assert_eq!(section, "events", "{what}");
                }
                other => panic!("{what}: expected SnapshotCorrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn flow_slab_recycles_slots_lifo() {
        let mut slab = FlowSlab::new(2);
        let n = NodeId(0);
        let cold = |dst: u32| FlowCold {
            path: Arc::from([]),
            dst: NodeId(dst),
            armed_epoch: u32::MAX,
            unroutable: false,
        };
        for c in 0..3u32 {
            slab.insert(n, FlowId::new(n, c), TcpSender::new(1000), cold(c));
        }
        assert_eq!(slab.slot_of(n, FlowId::new(n, 1)), Some(1));
        slab.free(n, FlowId::new(n, 1));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 1)), None);
        // Next insert reuses the freed slot, and lookup still resolves
        // strictly by (node, counter).
        slab.insert(n, FlowId::new(n, 3), TcpSender::new(1000), cold(3));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 3)), Some(1));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 0)), Some(0));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 2)), Some(2));
        assert_eq!(slab.hot.len(), 3, "no growth while free slots exist");
    }
}

#[cfg(test)]
mod timing_tests {
    use super::*;
    use crate::packet::HEADER_BYTES;
    use massf_engine::run_sequential;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{AsId, Network, NodeKind, Point};

    /// Two hosts joined by one router over exactly-specified links.
    fn line(bw: f64, latency_ms: f64) -> (Arc<SharedNet>, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(2.0, 0.0), AsId(0));
        net.add_link(a, r, bw, latency_ms);
        net.add_link(r, b, bw, latency_ms);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        (SharedNet::new(net, resolver), a, b)
    }

    struct ArrivalClock(Vec<SimTime>);
    impl AppLogic for ArrivalClock {
        fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
        fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
        fn on_datagram(&mut self, _: NodeId, _: FlowId, _: u32, _: u64, api: &mut SimApi<'_, '_>) {
            self.0.push(api.now());
        }
    }

    #[test]
    fn store_and_forward_timing_is_exact() {
        // 1 Mbps links, 1 ms propagation, 960-byte datagram + 40 header
        // = 1000 bytes = 8000 bits → 8 ms serialization per hop.
        // Host→router: depart 0, arrive 8+1 = 9 ms.
        // Router→host: depart 9, arrive 9+8+1 = 18 ms.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![SimTime::from_ms(18)]);
    }

    #[test]
    fn queueing_delay_accumulates_fifo() {
        // Two back-to-back 1000-byte datagrams: the second serializes
        // behind the first on each hop. First arrives at 18 ms; second
        // departs hop 1 at 8 ms (queued), arrives router 17 ms, departs
        // 25 ms (first left at 17), arrives 26 ms... carefully:
        //   hop1: p1 departs [0,8], p2 departs [8,16]; arrivals 9, 17.
        //   hop2: p1 departs [9,17]; p2 arrives 17, departs [17,25];
        //   p1 arrives b at 18, p2 at 26.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        let dg = |t| {
            (
                SimTime::from_us(t),
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )
        };
        run_sequential(&mut world, n, vec![dg(0), dg(1)], SimTime::from_secs(1));
        assert_eq!(
            world.app.0,
            vec![SimTime::from_ms(18), SimTime::from_ms(26)]
        );
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        // Full-duplex: a→b and b→a datagrams at t=0 must both arrive at
        // 18 ms — each direction has its own transmit server.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        let dg = |src: NodeId, dst: NodeId| {
            (
                SimTime::ZERO,
                LpId(src.0),
                NetEvent::SendDatagram {
                    dst,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )
        };
        run_sequential(
            &mut world,
            n,
            vec![dg(a, b), dg(b, a)],
            SimTime::from_secs(1),
        );
        assert_eq!(
            world.app.0,
            vec![SimTime::from_ms(18), SimTime::from_ms(18)]
        );
    }
}
