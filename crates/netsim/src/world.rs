//! The network world: a [`massf_engine::Model`] that forwards packets
//! hop by hop over a topology, runs TCP endpoints at hosts, and calls
//! into application logic.
//!
//! **LP-locality contract** (required by the engine for parallel
//! equivalence): handling an event at node `n` touches only `n`'s state —
//! its flow tables, its per-outgoing-link transmit queues, and its
//! application state. All cross-node effects are packets (events).
//!
//! **Memory layout** (DESIGN.md §3 item 13): per-flow state lives in
//! struct-of-arrays slabs ([`FlowSlab`], [`ReceiverSlab`]) instead of
//! per-flow `HashMap` entries, the port table is a sorted CSR adjacency
//! instead of a `HashMap<(u32, u32), u32>`, and packets carry a single
//! interned path `Arc` (see [`Packet`]). Slab slot numbers are an
//! implementation detail of one world instance — they never leak into
//! `FlowId`s, events, or results, so sequential and parallel runs stay
//! bit-identical even though their worlds recycle slots differently.

use crate::packet::{FlowId, NetEvent, Packet, PacketKind, ACK_BYTES, HEADER_BYTES, MSS};
use crate::profiling::ProfileData;
use crate::tcp::{AbortReason, SendAction, TcpReceiver, TcpSender};
use massf_engine::{Emitter, LpId, Model, SimTime};
use massf_faults::FaultState;
use massf_routing::{PathResolver, RouteCache};
use massf_topology::{Link, Network, NodeId};
use std::sync::Arc;

/// Default per-source route-cache capacity (destinations per source
/// node; see [`RouteCache`]). Sized so even a 20,000-node world stays
/// within tens of MB of cache while typical workloads — which revisit
/// far fewer than 128 peers per host — hit on nearly every resolve.
/// Pass `0` to [`NetWorld::with_route_cache`] /
/// [`crate::NetSimBuilder::route_cache_capacity`] to disable caching.
pub const DEFAULT_ROUTE_CACHE_CAPACITY: usize = 128;

/// Transport protocol selector for injected traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    Tcp,
    Udp,
}

/// Sorted CSR adjacency for next-hop port lookup: for each node, its
/// neighbor ids in ascending order and the connecting link index, in
/// parallel `u32` arrays. Replaces the former `HashMap<(u32, u32), u32>`
/// — a binary search over a node's (short) neighbor range touches one
/// or two cache lines, allocates nothing, and iterates in a fixed
/// order, so it is trivially deterministic.
struct PortTable {
    /// Per-node range into `neighbors`/`links`; length `node_count + 1`.
    offsets: Box<[u32]>,
    /// Neighbor node ids, ascending within each node's range.
    neighbors: Box<[u32]>,
    /// Link index for the corresponding neighbor entry.
    links: Box<[u32]>,
}

impl PortTable {
    fn build(net: &Network) -> Self {
        let n = net.node_count();
        let mut offsets = vec![0u32; n + 1];
        for link in &net.links {
            offsets[link.a.index() + 1] += 1;
            offsets[link.b.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[n] as usize;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; total];
        let mut links = vec![0u32; total];
        for link in &net.links {
            for (from, to) in [(link.a, link.b), (link.b, link.a)] {
                let c = &mut cursor[from.index()];
                neighbors[*c as usize] = to.0;
                links[*c as usize] = link.id.0;
                *c += 1;
            }
        }
        // Sort each node's range by neighbor id. The sort is stable, so
        // parallel links between the same pair keep link-insertion order
        // and lookup — which takes the *last* entry of an equal-neighbor
        // run — preserves the previous HashMap's insert-overwrite
        // semantics exactly.
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        for i in 0..n {
            let range = offsets[i] as usize..offsets[i + 1] as usize;
            scratch.clear();
            scratch.extend(
                neighbors[range.clone()]
                    .iter()
                    .copied()
                    .zip(links[range.clone()].iter().copied()),
            );
            scratch.sort_by_key(|&(nb, _)| nb);
            for (k, &(nb, l)) in scratch.iter().enumerate() {
                neighbors[offsets[i] as usize + k] = nb;
                links[offsets[i] as usize + k] = l;
            }
        }
        PortTable {
            offsets: offsets.into(),
            neighbors: neighbors.into(),
            links: links.into(),
        }
    }

    /// Link index connecting `from → to`, if adjacent.
    fn lookup(&self, from: NodeId, to: NodeId) -> Option<u32> {
        let lo = self.offsets[from.index()] as usize;
        let hi = self.offsets[from.index() + 1] as usize;
        let ns = &self.neighbors[lo..hi];
        let end = ns.partition_point(|&nb| nb <= to.0);
        if end > 0 && ns[end - 1] == to.0 {
            Some(self.links[lo + end - 1])
        } else {
            None
        }
    }
}

/// Immutable data shared by all partitions: topology, routing, and
/// per-link derived constants.
pub struct SharedNet {
    pub net: Network,
    pub resolver: Arc<dyn PathResolver>,
    /// Scripted fault timeline, when fault injection is enabled. All
    /// queries are pure functions of virtual time, so sharing one
    /// instance across partitions preserves parallel determinism.
    pub faults: Option<Arc<FaultState>>,
    /// `(from, to)` → link index, both directions (sorted CSR).
    port: PortTable,
    /// Drop-tail buffer size per link, bytes.
    buffer_bytes: Vec<u64>,
}

impl SharedNet {
    /// Derive shared state. Buffers default to 50 ms of line rate,
    /// floored at 30 kB (≈ 20 packets).
    pub fn new(net: Network, resolver: Arc<dyn PathResolver>) -> Arc<Self> {
        Self::build(net, resolver, None)
    }

    /// Like [`SharedNet::new`], with fault injection enabled: routing
    /// follows the fault timeline's per-epoch resolvers (epoch 0 — the
    /// fault-free prefix — uses `faults`' base resolver) and packets
    /// touching dead links or nodes are dropped.
    pub fn with_faults(net: Network, faults: Arc<FaultState>) -> Arc<Self> {
        let resolver = faults.resolver_for_epoch(0).clone();
        Self::build(net, resolver, Some(faults))
    }

    fn build(
        net: Network,
        resolver: Arc<dyn PathResolver>,
        faults: Option<Arc<FaultState>>,
    ) -> Arc<Self> {
        let port = PortTable::build(&net);
        let mut buffer_bytes = Vec::with_capacity(net.links.len());
        for link in &net.links {
            buffer_bytes.push(((link.bandwidth_bps * 0.050 / 8.0) as u64).max(30_000));
        }
        Arc::new(SharedNet {
            net,
            resolver,
            faults,
            port,
            buffer_bytes,
        })
    }

    /// The link connecting `from` to `to`, if adjacent.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.port
            .lookup(from, to)
            .map(|l| &self.net.links[l as usize])
    }

    /// The path resolver in force at `now`: the epoch resolver of the
    /// fault timeline when faults are enabled, the static resolver
    /// otherwise.
    pub fn resolver_at(&self, now: SimTime) -> &dyn PathResolver {
        match &self.faults {
            Some(f) => f.resolver_at(now).as_ref(),
            None => self.resolver.as_ref(),
        }
    }

    /// Number of LPs (all nodes are LPs).
    pub fn lp_count(&self) -> usize {
        self.net.node_count()
    }
}

/// The interface application logic uses to act on the network. All
/// actions originate at the current host (the LP whose event is being
/// handled).
pub struct SimApi<'a, 'b> {
    host: NodeId,
    now: SimTime,
    shared: &'a SharedNet,
    state: &'a mut NodeStates,
    profile: &'a mut ProfileData,
    emitter: &'a mut Emitter<'b, NetEvent>,
}

impl SimApi<'_, '_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this logic runs on.
    pub fn host(&self) -> NodeId {
        self.host
    }

    /// Open a TCP flow of `bytes` from this host to `dst`. Returns the
    /// flow id, or `None` when `dst` is unreachable (possible under BGP
    /// policy) or `dst` is this host.
    pub fn start_tcp_flow(&mut self, dst: NodeId, bytes: u64) -> Option<FlowId> {
        start_tcp_flow_inner(
            self.shared,
            self.state,
            self.profile,
            self.emitter,
            self.host,
            dst,
            bytes,
            self.now,
        )
    }

    /// Send one UDP datagram of `bytes` payload to `dst`, carrying the
    /// app-opaque `meta` word. Returns false when unreachable.
    pub fn send_datagram(&mut self, dst: NodeId, bytes: u32, meta: u64) -> bool {
        let Some(path) = route_arc(
            self.shared,
            &mut self.state.route_cache,
            self.profile,
            self.host,
            dst,
            self.now,
        ) else {
            self.profile.unroutable += 1;
            return false;
        };
        let counter = &mut self.state.flow_counter[self.host.index()];
        let flow = FlowId::new(self.host, *counter);
        *counter += 1;
        let pkt = Packet {
            flow,
            meta,
            path,
            dst,
            seq: 0,
            size_bytes: bytes + HEADER_BYTES,
            hop: 0,
            kind: PacketKind::Datagram,
        };
        transmit(
            self.shared,
            &mut self.state.busy_until,
            self.profile,
            self.emitter,
            pkt,
            self.now,
        );
        true
    }

    /// Arm an application timer that will fire `on_timer(host, token)`
    /// after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.emitter
            .emit(delay, LpId(self.host.0), NetEvent::AppTimer { token });
    }
}

/// Application logic attached to hosts. Implementations keep any
/// per-host state internally, indexed by host id, and must touch only
/// the state of the host passed to each callback (LP locality).
pub trait AppLogic: Send {
    /// A TCP flow started by `host` completed (all data acknowledged).
    fn on_flow_complete(&mut self, host: NodeId, flow: FlowId, api: &mut SimApi<'_, '_>);

    /// An application timer armed via [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, host: NodeId, token: u64, api: &mut SimApi<'_, '_>);

    /// A UDP datagram arrived at `host`, carrying the sender's `meta`.
    fn on_datagram(
        &mut self,
        _host: NodeId,
        _from_flow: FlowId,
        _payload_bytes: u32,
        _meta: u64,
        _api: &mut SimApi<'_, '_>,
    ) {
    }

    /// A TCP flow started by `host` gave up (retry budget exhausted,
    /// typically because a fault severed its path). Default: ignore.
    fn on_flow_aborted(
        &mut self,
        _host: NodeId,
        _flow: FlowId,
        _reason: AbortReason,
        _api: &mut SimApi<'_, '_>,
    ) {
    }
}

/// An [`AppLogic`] that does nothing (pure background-free forwarding).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoApp;

impl AppLogic for NoApp {
    fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
    fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
}

/// The per-host counter packed into a [`FlowId`]'s low 32 bits.
#[inline]
fn flow_counter_of(flow: FlowId) -> u32 {
    (flow.0 & 0xFFFF_FFFF) as u32
}

/// Cold per-flow sender bookkeeping: touched at flow setup, RTO
/// fail-over, and teardown, but not on the per-ACK hot path (only its
/// `path`/`dst` words are read there, to stamp outgoing packets).
struct FlowCold {
    /// Forward path; the `Arc` is interned per `(epoch, src, dst)` by
    /// the world's route cache, so concurrent flows between the same
    /// pair share one allocation.
    path: Arc<[NodeId]>,
    /// Flow destination, cached out of the path.
    dst: NodeId,
    /// Epoch of the currently armed RTO timer.
    armed_epoch: u32,
    /// The last fault-driven re-resolution found no path (colors the
    /// abort reason).
    unroutable: bool,
}

/// Struct-of-arrays slab of active TCP senders, replacing the former
/// `HashMap<FlowId, FlowState>`.
///
/// Storage is slot-indexed: `hot[slot]` holds the TCP state machine
/// (the only thing the per-ACK hot path mutates), `cold[slot]` the
/// path/bookkeeping, and freed slots are recycled LIFO through `free`.
/// Lookup goes through a dense per-node index of `(flow counter, slot)`
/// pairs — per-host counters are monotone, so appends keep each index
/// sorted and lookup is a binary search over a short, cache-dense
/// array. Slot assignment is a pure function of the world's event
/// sequence (pop order of a LIFO free list), but slots are never
/// exposed: the semantic key is always `(node, counter)`.
struct FlowSlab {
    /// Hot per-flow TCP state machines.
    hot: Vec<TcpSender>,
    /// Cold per-flow bookkeeping, parallel to `hot`.
    cold: Vec<FlowCold>,
    /// Recycled slots, reused LIFO.
    free: Vec<u32>,
    /// Per-node `(flow counter, slot)` pairs, sorted by counter.
    by_node: Vec<Vec<(u32, u32)>>,
    /// Shared empty path installed in freed slots so the real path
    /// `Arc` is released as soon as the flow ends.
    empty: Arc<[NodeId]>,
}

impl FlowSlab {
    fn new(nodes: usize) -> Self {
        FlowSlab {
            hot: Vec::new(),
            cold: Vec::new(),
            free: Vec::new(),
            by_node: vec![Vec::new(); nodes],
            empty: Arc::from([]),
        }
    }

    /// Store a freshly opened flow; recycles a freed slot when one is
    /// available.
    fn insert(&mut self, node: NodeId, flow: FlowId, sender: TcpSender, cold: FlowCold) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.hot[s as usize] = sender;
                self.cold[s as usize] = cold;
                s
            }
            None => {
                self.hot.push(sender);
                self.cold.push(cold);
                (self.hot.len() - 1) as u32
            }
        };
        let index = &mut self.by_node[node.index()];
        debug_assert!(
            index.last().is_none_or(|&(c, _)| c < flow_counter_of(flow)),
            "per-host flow counters are monotone"
        );
        index.push((flow_counter_of(flow), slot));
    }

    /// The slot of `flow` at `node`, if the flow is still active.
    fn slot_of(&self, node: NodeId, flow: FlowId) -> Option<usize> {
        let index = &self.by_node[node.index()];
        index
            .binary_search_by_key(&flow_counter_of(flow), |&(c, _)| c)
            .ok()
            .map(|i| index[i].1 as usize)
    }

    /// Release a finished flow's slot for reuse and drop its path.
    fn free(&mut self, node: NodeId, flow: FlowId) {
        let index = &mut self.by_node[node.index()];
        if let Ok(i) = index.binary_search_by_key(&flow_counter_of(flow), |&(c, _)| c) {
            let (_, slot) = index.remove(i);
            self.cold[slot as usize].path = self.empty.clone();
            self.free.push(slot);
        }
    }
}

/// Struct-of-arrays slab of TCP receivers, replacing the former
/// `HashMap<FlowId, TcpReceiver>`. Receiver entries live at the
/// *destination* LP and are never freed (the sender cannot reach across
/// LPs to close them — LP locality); they are bounded by the flow count
/// and each is a two-word cumulative-ACK machine.
struct ReceiverSlab {
    state: Vec<TcpReceiver>,
    /// Per-node `(flow, slot)` pairs, sorted by flow id.
    by_node: Vec<Vec<(FlowId, u32)>>,
}

impl ReceiverSlab {
    fn new(nodes: usize) -> Self {
        ReceiverSlab {
            state: Vec::new(),
            by_node: vec![Vec::new(); nodes],
        }
    }

    /// The receiver for `flow` at `node`, created on first touch.
    fn entry(&mut self, node: NodeId, flow: FlowId) -> &mut TcpReceiver {
        let index = &mut self.by_node[node.index()];
        let slot = match index.binary_search_by_key(&flow, |&(f, _)| f) {
            Ok(i) => index[i].1,
            Err(i) => {
                let slot = self.state.len() as u32;
                self.state.push(TcpReceiver::default());
                index.insert(i, (flow, slot));
                slot
            }
        };
        &mut self.state[slot as usize]
    }
}

/// Mutable per-node state. A world touches only entries belonging to its
/// partition's nodes.
struct NodeStates {
    /// Per-host counter for FlowId generation.
    flow_counter: Vec<u32>,
    /// Transmit-server state per (link, direction): the time the link
    /// becomes free. Direction 0 sends from `link.a`, 1 from `link.b`.
    busy_until: Vec<SimTime>,
    /// Active TCP senders (owned by the source host).
    flows: FlowSlab,
    /// TCP receivers (owned by the destination host).
    receivers: ReceiverSlab,
    /// Memoized path resolutions, sharded by source node. Routes are
    /// only resolved while handling an event at the source's LP, so
    /// each shard is owned by exactly one partition — per-run state
    /// that stays bit-identical across executors (see `route_arc`).
    /// Doubles as the world's path *interning* table: every packet of a
    /// flow (and every concurrent flow between the same pair in the
    /// same epoch) shares the one `Arc` cached here.
    route_cache: RouteCache,
    /// Reusable `SendAction` buffer, taken (and returned empty) by each
    /// handler batch so the steady-state hot path allocates nothing.
    action_scratch: Vec<SendAction>,
}

impl NodeStates {
    fn new(shared: &SharedNet, route_cache_capacity: usize) -> Self {
        let nodes = shared.net.node_count();
        NodeStates {
            flow_counter: vec![0; nodes],
            busy_until: vec![SimTime::ZERO; shared.net.links.len() * 2],
            flows: FlowSlab::new(nodes),
            receivers: ReceiverSlab::new(nodes),
            route_cache: RouteCache::new(nodes, route_cache_capacity),
            action_scratch: Vec::new(),
        }
    }
}

/// The packet-level network model (one instance per partition, or a
/// single instance for sequential runs).
pub struct NetWorld<A: AppLogic> {
    shared: Arc<SharedNet>,
    state: NodeStates,
    profile: ProfileData,
    app: A,
}

impl<A: AppLogic> NetWorld<A> {
    /// A world over `shared` with application logic `app` and the
    /// default route-cache capacity.
    pub fn new(shared: Arc<SharedNet>, app: A) -> Self {
        Self::with_route_cache(shared, app, DEFAULT_ROUTE_CACHE_CAPACITY)
    }

    /// Like [`NetWorld::new`] with an explicit per-source route-cache
    /// capacity (`0` disables route caching).
    pub fn with_route_cache(shared: Arc<SharedNet>, app: A, route_cache_capacity: usize) -> Self {
        let state = NodeStates::new(&shared, route_cache_capacity);
        let profile = ProfileData::new(shared.net.node_count(), shared.net.links.len());
        NetWorld {
            shared,
            state,
            profile,
            app,
        }
    }

    /// Traffic-profile counters accumulated so far.
    pub fn profile(&self) -> &ProfileData {
        &self.profile
    }

    /// Consume the world, returning profile and application state.
    pub fn into_parts(self) -> (ProfileData, A) {
        (self.profile, self.app)
    }

    /// Application logic (e.g. to read workload completion records).
    pub fn app(&self) -> &A {
        &self.app
    }
}

/// Resolve a route at virtual time `now` through the world's path
/// cache, requiring ≥ 2 nodes. Keys embed the fault-epoch index, so a
/// reconvergence can never serve a pre-fault path; repeated pairs in
/// the same epoch share one `Arc` and skip the resolver entirely.
///
/// Determinism: this is only called while handling an event at `src`'s
/// LP, so the per-src cache shard — and with it every hit/miss/evict
/// counter in `profile.route_cache` — sees the same query sequence at
/// any thread count or partitioning.
fn route_arc(
    shared: &SharedNet,
    cache: &mut RouteCache,
    profile: &mut ProfileData,
    src: NodeId,
    dst: NodeId,
    now: SimTime,
) -> Option<Arc<[NodeId]>> {
    if src == dst {
        return None;
    }
    let epoch = match &shared.faults {
        // simlint: allow(cast-lossy) -- epoch count is bounded by the fault-script length, far below u32::MAX
        Some(f) => f.epoch_at(now) as u32,
        None => 0,
    };
    cache.get_or_insert_with(&mut profile.route_cache, epoch, src, dst, || {
        let path = shared.resolver_at(now).route_arc(src, dst);
        if let Some(p) = &path {
            debug_assert!(p.len() >= 2);
        }
        path
    })
}

/// Put `pkt` on the wire at `node_at(hop) → node_at(hop+1)`. Applies
/// store-and-forward serialization, FIFO queueing, and drop-tail loss;
/// schedules the arrival at the next hop. Packets offered to a dead
/// link or dead endpoint are counted as fault drops.
fn transmit(
    shared: &SharedNet,
    busy_until: &mut [SimTime],
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    mut pkt: Packet,
    now: SimTime,
) {
    let from = pkt.node_at(pkt.hop as usize);
    let to = pkt.node_at(pkt.hop as usize + 1);
    let link = shared
        .link_between(from, to)
        .expect("resolved paths follow existing links");
    if let Some(f) = &shared.faults {
        if !f.is_link_up(link.id, now) || !f.is_node_up(from, now) || !f.is_node_up(to, now) {
            profile.fault_drops += 1;
            return;
        }
    }
    let dir = usize::from(from != link.a);
    let slot = link.id.index() * 2 + dir;

    let busy = busy_until[slot];
    let depart = busy.max(now);
    // Bytes already queued = backlog time × line rate.
    let backlog_bytes =
        (depart.saturating_sub(now).as_secs_f64() * link.bandwidth_bps / 8.0) as u64;
    if backlog_bytes + pkt.size_bytes as u64 > shared.buffer_bytes[link.id.index()] {
        profile.drops += 1;
        return;
    }
    let tx = SimTime::from_secs_f64(pkt.size_bytes as f64 * 8.0 / link.bandwidth_bps);
    busy_until[slot] = depart + tx;
    profile.link_packets[link.id.index()] += 1;

    let arrival_delay = (depart + tx + SimTime::from_ms_f64(link.latency_ms)) - now;
    pkt.hop += 1;
    emitter.emit(arrival_delay, LpId(to.0), NetEvent::Arrive(pkt));
}

/// Open a TCP flow; shared by `SimApi` and the `StartFlow` event.
#[allow(clippy::too_many_arguments)]
fn start_tcp_flow_inner(
    shared: &SharedNet,
    state: &mut NodeStates,
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    now: SimTime,
) -> Option<FlowId> {
    let Some(path) = route_arc(shared, &mut state.route_cache, profile, src, dst, now) else {
        profile.unroutable += 1;
        return None;
    };
    let counter = &mut state.flow_counter[src.index()];
    let flow = FlowId::new(src, *counter);
    *counter += 1;

    let mut sender = TcpSender::new(bytes);
    let mut actions = std::mem::take(&mut state.action_scratch);
    sender.open(now, &mut actions);
    apply_actions(
        shared,
        &mut state.busy_until,
        profile,
        emitter,
        flow,
        &path,
        dst,
        &mut actions,
        now,
    );
    state.action_scratch = actions;
    let mut armed_epoch = u32::MAX;
    arm_timer(emitter, src, flow, &sender, &mut armed_epoch);
    state.flows.insert(
        src,
        flow,
        sender,
        FlowCold {
            path,
            dst,
            armed_epoch,
            unroutable: false,
        },
    );
    Some(flow)
}

/// How a batch of sender actions left the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowOutcome {
    Active,
    Completed,
    Aborted,
}

/// Turn sender actions into packets; reports whether the flow ended.
/// Drains `actions`, leaving the (capacity-retaining) buffer empty for
/// reuse.
#[allow(clippy::too_many_arguments)]
fn apply_actions(
    shared: &SharedNet,
    busy_until: &mut [SimTime],
    profile: &mut ProfileData,
    emitter: &mut Emitter<'_, NetEvent>,
    flow: FlowId,
    path: &Arc<[NodeId]>,
    dst: NodeId,
    actions: &mut Vec<SendAction>,
    now: SimTime,
) -> FlowOutcome {
    let mut outcome = FlowOutcome::Active;
    for action in actions.drain(..) {
        match action {
            SendAction::Transmit { seq } => {
                let pkt = Packet {
                    flow,
                    meta: 0,
                    path: path.clone(),
                    dst,
                    seq,
                    // Every segment modeled at full MSS; final-segment
                    // byte-exactness does not affect load shaping.
                    size_bytes: MSS + HEADER_BYTES,
                    hop: 0,
                    kind: PacketKind::Data,
                };
                transmit(shared, busy_until, profile, emitter, pkt, now);
            }
            SendAction::Complete => outcome = FlowOutcome::Completed,
            SendAction::Abort => outcome = FlowOutcome::Aborted,
        }
    }
    outcome
}

/// (Re-)arm the RTO timer when needed and not already armed for the
/// current epoch.
fn arm_timer(
    emitter: &mut Emitter<'_, NetEvent>,
    host: NodeId,
    flow: FlowId,
    sender: &TcpSender,
    armed_epoch: &mut u32,
) {
    if sender.needs_timer() && *armed_epoch != sender.timer_epoch {
        *armed_epoch = sender.timer_epoch;
        emitter.emit(
            sender.rto,
            LpId(host.0),
            NetEvent::RtoTimer {
                flow,
                epoch: sender.timer_epoch,
            },
        );
    }
}

impl<A: AppLogic> Model for NetWorld<A> {
    type Event = NetEvent;

    fn handle(
        &mut self,
        target: LpId,
        now: SimTime,
        event: NetEvent,
        out: &mut Emitter<'_, NetEvent>,
    ) {
        let node = NodeId(target.0);
        let shared = &*self.shared;
        let state = &mut self.state;
        let profile = &mut self.profile;
        let app = &mut self.app;

        match event {
            NetEvent::Arrive(pkt) => {
                // A packet that was in flight when its link or either
                // endpoint died is lost (checked at arrival time; `hop`
                // was already advanced past the traversed link).
                if let Some(f) = &shared.faults {
                    let prev = pkt.node_at(pkt.hop as usize - 1);
                    let link_up = shared
                        .link_between(prev, node)
                        .is_some_and(|l| f.is_link_up(l.id, now));
                    if !link_up || !f.is_node_up(node, now) {
                        profile.fault_drops += 1;
                        return;
                    }
                }
                profile.node_packets[node.index()] += 1;
                if !pkt.at_destination() {
                    transmit(shared, &mut state.busy_until, profile, out, pkt, now);
                    return;
                }
                match pkt.kind {
                    PacketKind::Data => {
                        let recv = state.receivers.entry(node, pkt.flow);
                        let ack = recv.on_data(pkt.seq);
                        // The ACK walks the *same* interned path in
                        // reverse (kind = Ack); no second allocation.
                        let ack_pkt = Packet {
                            flow: pkt.flow,
                            meta: 0,
                            path: pkt.path.clone(),
                            dst: pkt.flow.source(),
                            seq: ack,
                            size_bytes: ACK_BYTES,
                            hop: 0,
                            kind: PacketKind::Ack,
                        };
                        transmit(shared, &mut state.busy_until, profile, out, ack_pkt, now);
                    }
                    PacketKind::Ack => {
                        let Some(slot) = state.flows.slot_of(node, pkt.flow) else {
                            return; // flow already completed
                        };
                        let mut actions = std::mem::take(&mut state.action_scratch);
                        state.flows.hot[slot].on_ack(pkt.seq, now, &mut actions);
                        let (path, dst) = {
                            let cold = &state.flows.cold[slot];
                            (cold.path.clone(), cold.dst)
                        };
                        let outcome = apply_actions(
                            shared,
                            &mut state.busy_until,
                            profile,
                            out,
                            pkt.flow,
                            &path,
                            dst,
                            &mut actions,
                            now,
                        );
                        state.action_scratch = actions;
                        match outcome {
                            FlowOutcome::Completed => {
                                profile.completed_flows += 1;
                                profile.completed_segments +=
                                    state.flows.hot[slot].total_segments as u64;
                                // NOTE: the receiver-side entry lives at
                                // the *destination* LP and must not be
                                // touched from here (LP locality); it is
                                // simply left behind, bounded by the
                                // flow count.
                                state.flows.free(node, pkt.flow);
                                let mut api = SimApi {
                                    host: node,
                                    now,
                                    shared,
                                    state,
                                    profile,
                                    emitter: out,
                                };
                                app.on_flow_complete(node, pkt.flow, &mut api);
                            }
                            // ACKs acknowledge progress; they never
                            // exhaust the retry budget.
                            FlowOutcome::Aborted => unreachable!("ACKs cannot abort a flow"),
                            FlowOutcome::Active => {
                                arm_timer(
                                    out,
                                    node,
                                    pkt.flow,
                                    &state.flows.hot[slot],
                                    &mut state.flows.cold[slot].armed_epoch,
                                );
                            }
                        }
                    }
                    PacketKind::Datagram => {
                        let payload = pkt.size_bytes - HEADER_BYTES;
                        let meta = pkt.meta;
                        let mut api = SimApi {
                            host: node,
                            now,
                            shared,
                            state,
                            profile,
                            emitter: out,
                        };
                        app.on_datagram(node, pkt.flow, payload, meta, &mut api);
                    }
                }
            }
            NetEvent::RtoTimer { flow, epoch } => {
                let Some(slot) = state.flows.slot_of(node, flow) else {
                    return;
                };
                if state.flows.hot[slot].timer_epoch != epoch {
                    return; // stale timer
                }
                state.flows.cold[slot].armed_epoch = u32::MAX;
                // Under fault injection a timeout may mean the path died:
                // re-resolve against the current epoch and fail over to
                // the reconverged path before retransmitting. (Skipped
                // entirely in fault-free runs, whose behavior must not
                // change.)
                if shared.faults.is_some() {
                    let dst = state.flows.cold[slot].dst;
                    match route_arc(shared, &mut state.route_cache, profile, node, dst, now) {
                        Some(path) => {
                            let cold = &mut state.flows.cold[slot];
                            cold.unroutable = false;
                            if path != cold.path {
                                cold.path = path;
                            }
                        }
                        None => state.flows.cold[slot].unroutable = true,
                    }
                }
                let mut actions = std::mem::take(&mut state.action_scratch);
                state.flows.hot[slot].on_timeout(&mut actions);
                let (path, dst) = {
                    let cold = &state.flows.cold[slot];
                    (cold.path.clone(), cold.dst)
                };
                let outcome = apply_actions(
                    shared,
                    &mut state.busy_until,
                    profile,
                    out,
                    flow,
                    &path,
                    dst,
                    &mut actions,
                    now,
                );
                state.action_scratch = actions;
                match outcome {
                    FlowOutcome::Completed => unreachable!("timeout cannot complete a flow"),
                    FlowOutcome::Aborted => {
                        profile.aborted_flows += 1;
                        let reason = if state.flows.cold[slot].unroutable {
                            AbortReason::Unroutable
                        } else {
                            AbortReason::RetryBudgetExhausted
                        };
                        // As with completion, the receiver-side entry at
                        // the destination LP is left behind.
                        state.flows.free(node, flow);
                        let mut api = SimApi {
                            host: node,
                            now,
                            shared,
                            state,
                            profile,
                            emitter: out,
                        };
                        app.on_flow_aborted(node, flow, reason, &mut api);
                    }
                    FlowOutcome::Active => {
                        arm_timer(
                            out,
                            node,
                            flow,
                            &state.flows.hot[slot],
                            &mut state.flows.cold[slot].armed_epoch,
                        );
                    }
                }
            }
            NetEvent::AppTimer { token } => {
                let mut api = SimApi {
                    host: node,
                    now,
                    shared,
                    state,
                    profile,
                    emitter: out,
                };
                app.on_timer(node, token, &mut api);
            }
            NetEvent::StartFlow { dst, bytes } => {
                start_tcp_flow_inner(shared, state, profile, out, node, dst, bytes, now);
            }
            NetEvent::SendDatagram { dst, bytes, meta } => {
                let Some(path) = route_arc(shared, &mut state.route_cache, profile, node, dst, now)
                else {
                    profile.unroutable += 1;
                    return;
                };
                let counter = &mut state.flow_counter[node.index()];
                let flow = FlowId::new(node, *counter);
                *counter += 1;
                let pkt = Packet {
                    flow,
                    meta,
                    path,
                    dst,
                    seq: 0,
                    size_bytes: bytes + HEADER_BYTES,
                    hop: 0,
                    kind: PacketKind::Datagram,
                };
                transmit(shared, &mut state.busy_until, profile, out, pkt, now);
            }
            NetEvent::Fault { kind: _kind } => {
                profile.fault_events += 1;
                // Pay the reconvergence (SPT/RIB rebuild) at fault time
                // rather than at the next routed packet. Idempotent and
                // deterministic: the build is a pure function of the
                // epoch, whichever partition triggers it first.
                if let Some(f) = &shared.faults {
                    f.reconverge_at(now);
                }
            }
        }
    }
}

/// Expected number of kernel events for a clean one-segment exchange:
/// data packet arrivals at every hop plus ACK arrivals back.
pub fn events_per_roundtrip(hops: usize) -> u64 {
    2 * hops as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::segments_for;
    use massf_engine::run_sequential;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{AsId, NodeKind, Point};

    /// host A — r1 — r2 — host B with configurable bottleneck.
    fn dumbbell(bottleneck_bps: f64) -> (Arc<SharedNet>, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r1 = net.add_node(NodeKind::Router, Point::new(10.0, 0.0), AsId(0));
        let r2 = net.add_node(NodeKind::Router, Point::new(20.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(30.0, 0.0), AsId(0));
        net.add_link(a, r1, 1e9, 0.1);
        net.add_link(r1, r2, bottleneck_bps, 1.0);
        net.add_link(r2, b, 1e9, 0.1);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        (SharedNet::new(net, resolver), a, b)
    }

    /// Run one TCP flow A→B of `bytes` and return (profile, end stats).
    fn run_flow(
        shared: Arc<SharedNet>,
        a: NodeId,
        b: NodeId,
        bytes: u64,
        end: SimTime,
    ) -> (ProfileData, massf_engine::ExecutionStats) {
        let mut world = NetWorld::new(shared, NoApp);
        let n = world.shared.lp_count();
        let stats = run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::StartFlow { dst: b, bytes },
            )],
            end,
        );
        (world.profile, stats)
    }

    #[test]
    fn single_flow_completes() {
        let (shared, a, b) = dumbbell(100e6);
        let (profile, _) = run_flow(shared, a, b, 50_000, SimTime::from_secs(10));
        assert_eq!(profile.completed_flows, 1);
        assert_eq!(profile.completed_segments, segments_for(50_000) as u64);
        assert_eq!(profile.drops, 0, "no loss expected at 100 Mbps");
        assert_eq!(profile.unroutable, 0);
    }

    #[test]
    fn packets_traverse_every_hop() {
        let (shared, a, b) = dumbbell(100e6);
        let segs = segments_for(10_000) as u64; // 7 segments
        let (profile, _) = run_flow(shared, a, b, 10_000, SimTime::from_secs(10));
        // Each data segment arrives at r1, r2, B; each ACK at r2, r1, A.
        // 3 links × (segs data + segs acks) packets.
        for l in 0..3 {
            assert_eq!(
                profile.link_packets[l],
                2 * segs,
                "link {l}: {:?}",
                profile.link_packets
            );
        }
        // Routers see data+acks; hosts see acks (A) / data (B).
        assert_eq!(profile.node_packets[1], 2 * segs);
        assert_eq!(profile.node_packets[2], 2 * segs);
        assert_eq!(profile.node_packets[0], segs);
        assert_eq!(profile.node_packets[3], segs);
    }

    #[test]
    fn transfer_time_tracks_bottleneck_bandwidth() {
        // 1 MB over ~10 Mbps bottleneck ≈ 0.84 s of pure serialization;
        // with slow start and 2.4 ms RTT it lands within a small factor.
        let (shared, a, b) = dumbbell(10e6);
        let mut world = NetWorld::new(shared, NoApp);
        let n = world.shared.lp_count();
        let stats = run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::StartFlow {
                    dst: b,
                    bytes: 1_000_000,
                },
            )],
            SimTime::from_secs(60),
        );
        assert_eq!(world.profile.completed_flows, 1);
        // Sanity: total events bounded and nonzero.
        assert!(stats.total_events > 1000);
    }

    #[test]
    fn narrow_bottleneck_drops_but_still_completes() {
        // 1 Mbps bottleneck with 50 ms buffer (≈ 6 kB) forces drops once
        // slow start overshoots, but retransmission recovers.
        let (shared, a, b) = dumbbell(1e6);
        let (profile, _) = run_flow(shared, a, b, 200_000, SimTime::from_secs(60));
        assert!(profile.drops > 0, "expected drop-tail losses");
        assert_eq!(profile.completed_flows, 1, "TCP must recover from loss");
    }

    #[test]
    fn udp_datagram_delivered_to_app() {
        let (shared, a, b) = dumbbell(100e6);
        struct Sink(Vec<(NodeId, u32, u64)>);
        impl AppLogic for Sink {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
            fn on_datagram(
                &mut self,
                h: NodeId,
                _f: FlowId,
                bytes: u32,
                meta: u64,
                _: &mut SimApi<'_, '_>,
            ) {
                self.0.push((h, bytes, meta));
            }
        }
        let mut world = NetWorld::new(shared, Sink(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::from_ms(1),
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 512,
                    meta: 77,
                },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![(b, 512, 77)]);
    }

    #[test]
    fn app_timer_fires() {
        let (shared, a, _) = dumbbell(100e6);
        struct T(Vec<(u64, SimTime)>);
        impl AppLogic for T {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, token: u64, api: &mut SimApi<'_, '_>) {
                self.0.push((token, api.now()));
                if token < 3 {
                    api.set_timer(SimTime::from_ms(10), token + 1);
                }
            }
        }
        let mut world = NetWorld::new(shared, T(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::from_ms(5),
                LpId(a.0),
                NetEvent::AppTimer { token: 1 },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(
            world.app.0,
            vec![
                (1, SimTime::from_ms(5)),
                (2, SimTime::from_ms(15)),
                (3, SimTime::from_ms(25)),
            ]
        );
    }

    #[test]
    fn self_flow_rejected_as_unroutable() {
        let (shared, a, _) = dumbbell(100e6);
        let (profile, _) = run_flow(shared, a, a, 1000, SimTime::from_secs(1));
        assert_eq!(profile.completed_flows, 0);
        assert_eq!(profile.unroutable, 1);
    }

    #[test]
    fn fifo_links_never_reorder() {
        // Two back-to-back datagrams must arrive in order even though the
        // first is larger (store-and-forward FIFO).
        let (shared, a, b) = dumbbell(1e6);
        struct Order(Vec<u32>);
        impl AppLogic for Order {
            fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
            fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
            fn on_datagram(
                &mut self,
                _: NodeId,
                _: FlowId,
                bytes: u32,
                _meta: u64,
                _: &mut SimApi<'_, '_>,
            ) {
                self.0.push(bytes);
            }
        }
        let mut world = NetWorld::new(shared, Order(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![
                (
                    SimTime::ZERO,
                    LpId(a.0),
                    NetEvent::SendDatagram {
                        dst: b,
                        bytes: 1400,
                        meta: 0,
                    },
                ),
                (
                    SimTime::from_us(1),
                    LpId(a.0),
                    NetEvent::SendDatagram {
                        dst: b,
                        bytes: 40,
                        meta: 0,
                    },
                ),
            ],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![1400, 40]);
    }

    #[test]
    fn port_table_matches_adjacency() {
        let (shared, _, _) = dumbbell(100e6);
        for link in &shared.net.links {
            assert_eq!(
                shared.link_between(link.a, link.b).map(|l| l.id),
                Some(link.id)
            );
            assert_eq!(
                shared.link_between(link.b, link.a).map(|l| l.id),
                Some(link.id)
            );
        }
        // Non-adjacent pairs miss: hosts a (0) and b (3) are 3 hops apart.
        assert!(shared.link_between(NodeId(0), NodeId(3)).is_none());
        assert!(shared.link_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn flow_slab_recycles_slots_lifo() {
        let mut slab = FlowSlab::new(2);
        let n = NodeId(0);
        let cold = |dst: u32| FlowCold {
            path: Arc::from([]),
            dst: NodeId(dst),
            armed_epoch: u32::MAX,
            unroutable: false,
        };
        for c in 0..3u32 {
            slab.insert(n, FlowId::new(n, c), TcpSender::new(1000), cold(c));
        }
        assert_eq!(slab.slot_of(n, FlowId::new(n, 1)), Some(1));
        slab.free(n, FlowId::new(n, 1));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 1)), None);
        // Next insert reuses the freed slot, and lookup still resolves
        // strictly by (node, counter).
        slab.insert(n, FlowId::new(n, 3), TcpSender::new(1000), cold(3));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 3)), Some(1));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 0)), Some(0));
        assert_eq!(slab.slot_of(n, FlowId::new(n, 2)), Some(2));
        assert_eq!(slab.hot.len(), 3, "no growth while free slots exist");
    }
}

#[cfg(test)]
mod timing_tests {
    use super::*;
    use crate::packet::HEADER_BYTES;
    use massf_engine::run_sequential;
    use massf_routing::{CostMetric, FlatResolver};
    use massf_topology::{AsId, Network, NodeKind, Point};

    /// Two hosts joined by one router over exactly-specified links.
    fn line(bw: f64, latency_ms: f64) -> (Arc<SharedNet>, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Host, Point::new(0.0, 0.0), AsId(0));
        let r = net.add_node(NodeKind::Router, Point::new(1.0, 0.0), AsId(0));
        let b = net.add_node(NodeKind::Host, Point::new(2.0, 0.0), AsId(0));
        net.add_link(a, r, bw, latency_ms);
        net.add_link(r, b, bw, latency_ms);
        let resolver = Arc::new(FlatResolver::new(&net, CostMetric::Latency));
        (SharedNet::new(net, resolver), a, b)
    }

    struct ArrivalClock(Vec<SimTime>);
    impl AppLogic for ArrivalClock {
        fn on_flow_complete(&mut self, _: NodeId, _: FlowId, _: &mut SimApi<'_, '_>) {}
        fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi<'_, '_>) {}
        fn on_datagram(&mut self, _: NodeId, _: FlowId, _: u32, _: u64, api: &mut SimApi<'_, '_>) {
            self.0.push(api.now());
        }
    }

    #[test]
    fn store_and_forward_timing_is_exact() {
        // 1 Mbps links, 1 ms propagation, 960-byte datagram + 40 header
        // = 1000 bytes = 8000 bits → 8 ms serialization per hop.
        // Host→router: depart 0, arrive 8+1 = 9 ms.
        // Router→host: depart 9, arrive 9+8+1 = 18 ms.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        run_sequential(
            &mut world,
            n,
            vec![(
                SimTime::ZERO,
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )],
            SimTime::from_secs(1),
        );
        assert_eq!(world.app.0, vec![SimTime::from_ms(18)]);
    }

    #[test]
    fn queueing_delay_accumulates_fifo() {
        // Two back-to-back 1000-byte datagrams: the second serializes
        // behind the first on each hop. First arrives at 18 ms; second
        // departs hop 1 at 8 ms (queued), arrives router 17 ms, departs
        // 25 ms (first left at 17), arrives 26 ms... carefully:
        //   hop1: p1 departs [0,8], p2 departs [8,16]; arrivals 9, 17.
        //   hop2: p1 departs [9,17]; p2 arrives 17, departs [17,25];
        //   p1 arrives b at 18, p2 at 26.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        let dg = |t| {
            (
                SimTime::from_us(t),
                LpId(a.0),
                NetEvent::SendDatagram {
                    dst: b,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )
        };
        run_sequential(&mut world, n, vec![dg(0), dg(1)], SimTime::from_secs(1));
        assert_eq!(
            world.app.0,
            vec![SimTime::from_ms(18), SimTime::from_ms(26)]
        );
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        // Full-duplex: a→b and b→a datagrams at t=0 must both arrive at
        // 18 ms — each direction has its own transmit server.
        let (shared, a, b) = line(1e6, 1.0);
        let mut world = NetWorld::new(shared, ArrivalClock(Vec::new()));
        let n = world.shared.lp_count();
        let dg = |src: NodeId, dst: NodeId| {
            (
                SimTime::ZERO,
                LpId(src.0),
                NetEvent::SendDatagram {
                    dst,
                    bytes: 1000 - HEADER_BYTES,
                    meta: 0,
                },
            )
        };
        run_sequential(
            &mut world,
            n,
            vec![dg(a, b), dg(b, a)],
            SimTime::from_secs(1),
        );
        assert_eq!(
            world.app.0,
            vec![SimTime::from_ms(18), SimTime::from_ms(18)]
        );
    }
}
