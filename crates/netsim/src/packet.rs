//! Packets, flows, and the network event type.

use massf_faults::FaultKind;
use massf_topology::NodeId;
use std::sync::Arc;

/// Globally unique flow identifier: source host id in the high 32 bits,
/// a per-host counter in the low 32. Deterministic because per-host
/// counters are part of per-LP state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// Build from source host and per-host sequence number.
    pub fn new(src: NodeId, counter: u32) -> Self {
        FlowId(((src.0 as u64) << 32) | counter as u64)
    }

    /// The source host that created the flow.
    pub fn source(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }
}

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP data segment; `seq` is the segment number.
    Data,
    /// TCP cumulative acknowledgment; `seq` is the next expected segment.
    Ack,
    /// Connectionless datagram (UDP).
    Datagram,
}

/// A simulated packet. Paths are source routes resolved at flow setup
/// (see `massf-routing`); `hop` indexes the packet's current position.
#[derive(Debug, Clone)]
pub struct Packet {
    pub flow: FlowId,
    pub kind: PacketKind,
    pub seq: u32,
    /// Bytes on the wire (headers included).
    pub size_bytes: u32,
    /// Forward node path, `path[0]` = source host, last = destination.
    pub path: Arc<[NodeId]>,
    /// Reverse path for ACKs (destination's view), shipped with data
    /// packets so the receiver needs no resolver access.
    pub rpath: Arc<[NodeId]>,
    /// Index of the node currently holding the packet.
    pub hop: u16,
    /// Application-opaque metadata carried by datagrams (workflow edge
    /// ids, request tokens, …); zero for TCP packets.
    pub meta: u64,
}

impl Packet {
    /// The node this packet is destined for.
    pub fn destination(&self) -> NodeId {
        *self.path.last().expect("paths are non-empty")
    }

    /// The next node on the path, if any.
    pub fn next_node(&self) -> Option<NodeId> {
        self.path.get(self.hop as usize + 1).copied()
    }

    /// Has the packet reached its destination?
    pub fn at_destination(&self) -> bool {
        self.hop as usize + 1 == self.path.len()
    }
}

/// Events handled by the network world.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// A packet finishes propagation and arrives at the target LP.
    Arrive(Packet),
    /// TCP retransmission timer for `(flow, epoch)`; stale epochs are
    /// ignored.
    RtoTimer { flow: FlowId, epoch: u32 },
    /// An application timer set through [`crate::world::SimApi`].
    AppTimer { token: u64 },
    /// Ask the target host to open a TCP flow (used for scripted
    /// injections by the [`crate::agent::Agent`]).
    StartFlow { dst: NodeId, bytes: u64 },
    /// Ask the target host to send one UDP datagram.
    SendDatagram { dst: NodeId, bytes: u32, meta: u64 },
    /// A scripted fault fires (injected by the builder from a
    /// `massf_faults::FaultScript`). State flips are time-based in
    /// [`massf_faults::FaultState`]; this event makes the fault a
    /// first-class, counted occurrence and forces the routing
    /// reconvergence for the new epoch at fault time.
    Fault { kind: FaultKind },
}

/// Maximum segment size (TCP payload bytes per data packet).
pub const MSS: u32 = 1460;
/// Wire overhead per packet (IP + TCP headers).
pub const HEADER_BYTES: u32 = 40;
/// Size of a pure ACK on the wire.
pub const ACK_BYTES: u32 = HEADER_BYTES;

/// Number of MSS-sized segments needed for `bytes` of payload.
pub fn segments_for(bytes: u64) -> u32 {
    bytes.div_ceil(MSS as u64).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_packs_source_and_counter() {
        let f = FlowId::new(NodeId(7), 42);
        assert_eq!(f.source(), NodeId(7));
        assert_eq!(f.0 & 0xFFFF_FFFF, 42);
    }

    #[test]
    fn packet_path_navigation() {
        let path: Arc<[NodeId]> = vec![NodeId(1), NodeId(2), NodeId(3)].into();
        let mut p = Packet {
            flow: FlowId::new(NodeId(1), 0),
            kind: PacketKind::Data,
            seq: 0,
            size_bytes: 1500,
            path: path.clone(),
            rpath: vec![NodeId(3), NodeId(2), NodeId(1)].into(),
            hop: 0,
            meta: 0,
        };
        assert_eq!(p.destination(), NodeId(3));
        assert_eq!(p.next_node(), Some(NodeId(2)));
        assert!(!p.at_destination());
        p.hop = 2;
        assert!(p.at_destination());
        assert_eq!(p.next_node(), None);
    }

    #[test]
    fn segment_math() {
        assert_eq!(segments_for(1), 1);
        assert_eq!(segments_for(1460), 1);
        assert_eq!(segments_for(1461), 2);
        assert_eq!(segments_for(50_000), 35);
        assert_eq!(segments_for(0), 1, "empty flows still send one segment");
    }
}
