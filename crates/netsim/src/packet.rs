//! Packets, flows, and the network event type.

use massf_faults::FaultKind;
use massf_topology::NodeId;
use std::sync::Arc;

/// Globally unique flow identifier: source host id in the high 32 bits,
/// a per-host counter in the low 32. Deterministic because per-host
/// counters are part of per-LP state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl FlowId {
    /// Build from source host and per-host sequence number.
    pub fn new(src: NodeId, counter: u32) -> Self {
        FlowId(((src.0 as u64) << 32) | counter as u64)
    }

    /// The source host that created the flow.
    pub fn source(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }
}

/// What a packet is. The kind also fixes the packet's travel direction
/// over its (shared) path: `Data` and `Datagram` walk the path forward,
/// `Ack` walks the same node sequence in reverse — which is why one
/// path reference per packet suffices (see [`Packet::path`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP data segment; `seq` is the segment number.
    Data,
    /// TCP cumulative acknowledgment; `seq` is the next expected segment.
    Ack,
    /// Connectionless datagram (UDP).
    Datagram,
}

/// A simulated packet. Paths are source routes resolved at flow setup
/// (see `massf-routing`); `hop` counts the nodes already visited in the
/// packet's own travel direction.
///
/// Memory layout: exactly one `Arc` path reference per packet. The
/// forward path is interned per `(epoch, src, dst)` by the world's
/// route cache, so every packet of a flow — and every ACK coming back —
/// shares a single allocation; ACKs reuse the *same* `Arc` and derive
/// the reverse walk from [`PacketKind::Ack`] instead of carrying a
/// second `rpath` allocation. The destination is stored inline so the
/// hot-path destination check never dereferences the `Arc`.
#[derive(Debug, Clone)]
pub struct Packet {
    pub flow: FlowId,
    /// Application-opaque metadata carried by datagrams (workflow edge
    /// ids, request tokens, …); zero for TCP packets.
    pub meta: u64,
    /// Node path shared by both directions of the flow. For `Data` /
    /// `Datagram` the packet visits `path[0]` (source) through
    /// `path[len-1]` (destination); for `Ack` it visits the same nodes
    /// last-to-first.
    pub path: Arc<[NodeId]>,
    /// The node this packet is destined for (the last node of its walk,
    /// cached inline so destination checks don't touch the `Arc`).
    pub dst: NodeId,
    pub seq: u32,
    /// Bytes on the wire (headers included).
    pub size_bytes: u32,
    /// Number of nodes already visited in the packet's travel direction;
    /// the packet currently sits at `node_at(hop)`.
    pub hop: u16,
    pub kind: PacketKind,
}

/// Size budget: `FlowId` + `meta` (16) + one `Arc` fat pointer (16) +
/// `dst`/`seq`/`size_bytes` (12) + `hop`/`kind` packed into the final
/// word = 48 bytes, down from 64 with the old two-`Arc` layout. Growing
/// this struct regresses copy cost on every hop; update the budget only
/// with a measured justification in BENCH_memory.json.
const _: () = assert!(std::mem::size_of::<Packet>() <= 48);

impl Packet {
    /// Does this packet walk its path front-to-back?
    #[inline]
    pub fn forward(&self) -> bool {
        !matches!(self.kind, PacketKind::Ack)
    }

    /// The `i`-th node of the packet's walk (0 = where it started).
    #[inline]
    pub fn node_at(&self, i: usize) -> NodeId {
        if self.forward() {
            self.path[i]
        } else {
            self.path[self.path.len() - 1 - i]
        }
    }

    /// The node this packet is destined for.
    #[inline]
    pub fn destination(&self) -> NodeId {
        self.dst
    }

    /// The next node on the walk, if any.
    #[inline]
    pub fn next_node(&self) -> Option<NodeId> {
        if (self.hop as usize + 1) < self.path.len() {
            Some(self.node_at(self.hop as usize + 1))
        } else {
            None
        }
    }

    /// Has the packet reached its destination?
    #[inline]
    pub fn at_destination(&self) -> bool {
        self.hop as usize + 1 == self.path.len()
    }
}

/// Events handled by the network world.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// A packet finishes propagation and arrives at the target LP.
    Arrive(Packet),
    /// TCP retransmission timer for `(flow, epoch)`; stale epochs are
    /// ignored.
    RtoTimer { flow: FlowId, epoch: u32 },
    /// An application timer set through [`crate::world::SimApi`].
    AppTimer { token: u64 },
    /// Ask the target host to open a TCP flow (used for scripted
    /// injections by the [`crate::agent::Agent`]).
    StartFlow { dst: NodeId, bytes: u64 },
    /// Ask the target host to send one UDP datagram.
    SendDatagram { dst: NodeId, bytes: u32, meta: u64 },
    /// A scripted fault fires (injected by the builder from a
    /// `massf_faults::FaultScript`). State flips are time-based in
    /// [`massf_faults::FaultState`]; this event makes the fault a
    /// first-class, counted occurrence and forces the routing
    /// reconvergence for the new epoch at fault time.
    Fault { kind: FaultKind },
    /// Open a fluid (flow-level) background flow from `src` to `dst`.
    /// Always targets the fluid coordinator LP
    /// ([`crate::fluid::FLUID_COORDINATOR`]); `peak_bps == 0` means the
    /// flow's demand is unbounded (limited only by its bottleneck).
    FluidStart {
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        peak_bps: u64,
    },
    /// Fluid-flow completion alarm, armed by the max-min solver for the
    /// time `remaining / rate` runs out. Stale epochs (the flow's rate
    /// changed since arming) re-arm or park instead of completing.
    /// Coordinator LP → coordinator LP.
    FluidFinish { flow: FlowId, epoch: u32 },
    /// Mirror of [`NetEvent::Fault`] delivered to the fluid coordinator
    /// so flows traversing a failed element reroute or terminate at
    /// fault time. Appended by the builder only when the scenario
    /// injects fluid traffic.
    FluidFault { kind: FaultKind },
    /// Fluid → packet feedback: the coordinator reports the aggregate
    /// fluid rate (bytes/s) on one link direction (`slot = link·2 +
    /// dir`) to the LP that serializes onto it, shrinking the residual
    /// capacity and buffer the packet path sees there.
    FluidCapUpdate { slot: u32, fluid_bps: u64 },
    /// Packet → fluid feedback: a transmitting LP reports its windowed
    /// packet-load estimate (bytes/s) on one link direction to the
    /// coordinator, shrinking the capacity the max-min solver shares.
    FluidPacketLoad { slot: u32, bps: u64 },
}

/// Size budget: `Arrive` dominates — the 48-byte [`Packet`] plus the
/// discriminant packs into 56 bytes. Event payloads are moved through
/// heaps, outboxes and arenas constantly; keep the largest variant the
/// packet itself.
const _: () = assert!(std::mem::size_of::<NetEvent>() <= 56);
const _: () = assert!(std::mem::size_of::<FaultKind>() <= 16);
/// The full queued unit — `(time, tag, target)` header plus the payload —
/// as stored in executor arenas and cross-partition outboxes.
const _: () = assert!(std::mem::size_of::<massf_engine::EventRecord<NetEvent>>() <= 80);

/// Maximum segment size (TCP payload bytes per data packet).
pub const MSS: u32 = 1460;
/// Wire overhead per packet (IP + TCP headers).
pub const HEADER_BYTES: u32 = 40;
/// Size of a pure ACK on the wire.
pub const ACK_BYTES: u32 = HEADER_BYTES;

/// Number of MSS-sized segments needed for `bytes` of payload.
pub fn segments_for(bytes: u64) -> u32 {
    bytes.div_ceil(MSS as u64).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_packs_source_and_counter() {
        let f = FlowId::new(NodeId(7), 42);
        assert_eq!(f.source(), NodeId(7));
        assert_eq!(f.0 & 0xFFFF_FFFF, 42);
    }

    #[test]
    fn packet_path_navigation() {
        let path: Arc<[NodeId]> = vec![NodeId(1), NodeId(2), NodeId(3)].into();
        let mut p = Packet {
            flow: FlowId::new(NodeId(1), 0),
            meta: 0,
            path: path.clone(),
            dst: NodeId(3),
            seq: 0,
            size_bytes: 1500,
            hop: 0,
            kind: PacketKind::Data,
        };
        assert_eq!(p.destination(), NodeId(3));
        assert_eq!(p.node_at(0), NodeId(1));
        assert_eq!(p.next_node(), Some(NodeId(2)));
        assert!(!p.at_destination());
        p.hop = 2;
        assert!(p.at_destination());
        assert_eq!(p.next_node(), None);
    }

    #[test]
    fn ack_walks_the_same_path_in_reverse() {
        let path: Arc<[NodeId]> = vec![NodeId(1), NodeId(2), NodeId(3)].into();
        let mut ack = Packet {
            flow: FlowId::new(NodeId(1), 0),
            meta: 0,
            path,
            dst: NodeId(1),
            seq: 0,
            size_bytes: 40,
            hop: 0,
            kind: PacketKind::Ack,
        };
        assert!(!ack.forward());
        assert_eq!(ack.node_at(0), NodeId(3));
        assert_eq!(ack.next_node(), Some(NodeId(2)));
        ack.hop = 1;
        assert_eq!(ack.node_at(ack.hop as usize), NodeId(2));
        assert_eq!(ack.next_node(), Some(NodeId(1)));
        ack.hop = 2;
        assert!(ack.at_destination());
        assert_eq!(ack.node_at(2), NodeId(1));
        assert_eq!(ack.destination(), NodeId(1));
    }

    #[test]
    fn segment_math() {
        assert_eq!(segments_for(1), 1);
        assert_eq!(segments_for(1460), 1);
        assert_eq!(segments_for(1461), 2);
        assert_eq!(segments_for(50_000), 35);
        assert_eq!(segments_for(0), 1, "empty flows still send one segment");
    }
}
