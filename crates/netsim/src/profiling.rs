//! Traffic profiling: the dynamic information behind the paper's PROF
//! and HPROF mappers.
//!
//! "Typically profiling involves an initial simulation experiment using
//! a naive initial partition and traffic monitoring. The simulation
//! yields detailed traffic information, and improves subsequent network
//! partitions." (Section 3.3). [`ProfileData`] is that information:
//! per-node kernel-event counts (vertex weights) and per-link packet
//! counts (edge weights).

use crate::fluid::FluidStats;
use massf_routing::RouteCacheStats;

/// Traffic counters from one simulation run (or one partition's shard;
/// merge shards with [`ProfileData::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileData {
    /// Packets handled per node (≈ kernel events; the paper's load
    /// measure).
    pub node_packets: Vec<u64>,
    /// Packets carried per link (both directions summed).
    pub link_packets: Vec<u64>,
    /// Packets lost to drop-tail queues.
    pub drops: u64,
    /// TCP flows that ran to completion.
    pub completed_flows: u64,
    /// Data segments of completed flows.
    pub completed_segments: u64,
    /// Flow/datagram requests whose destination was unreachable (BGP
    /// policy) or identical to the source.
    pub unroutable: u64,
    /// Packets lost to injected faults: dropped at a dead link or dead
    /// node (at transmit or on arrival), as opposed to queue `drops`.
    pub fault_drops: u64,
    /// TCP flows that gave up after exhausting their retry budget.
    pub aborted_flows: u64,
    /// Scripted fault events handled (link/router/adjacency state flips).
    pub fault_events: u64,
    /// Route-cache observability: hit/miss/evict counts of the world's
    /// per-source path cache. Deterministic (the cache is sharded by
    /// source and queried only from the source's LP), so these counters
    /// participate in the bit-identity equality checks like any other.
    pub route_cache: RouteCacheStats,
    /// Fluid background-traffic counters (see `crate::fluid`). All
    /// owned by the coordinator LP except `packet_load_updates`'
    /// emission side, so the merge is a plain sum.
    pub fluid: FluidStats,
}

impl ProfileData {
    /// Zeroed counters for a network of the given size.
    pub fn new(nodes: usize, links: usize) -> Self {
        ProfileData {
            node_packets: vec![0; nodes],
            link_packets: vec![0; links],
            drops: 0,
            completed_flows: 0,
            completed_segments: 0,
            unroutable: 0,
            fault_drops: 0,
            aborted_flows: 0,
            fault_events: 0,
            route_cache: RouteCacheStats::default(),
            fluid: FluidStats::default(),
        }
    }

    /// Accumulate another shard's counters.
    ///
    /// # Panics
    /// Panics when sizes disagree.
    pub fn merge(&mut self, other: &ProfileData) {
        assert_eq!(self.node_packets.len(), other.node_packets.len());
        assert_eq!(self.link_packets.len(), other.link_packets.len());
        for (a, b) in self.node_packets.iter_mut().zip(&other.node_packets) {
            *a += b;
        }
        for (a, b) in self.link_packets.iter_mut().zip(&other.link_packets) {
            *a += b;
        }
        self.drops += other.drops;
        self.completed_flows += other.completed_flows;
        self.completed_segments += other.completed_segments;
        self.unroutable += other.unroutable;
        self.fault_drops += other.fault_drops;
        self.aborted_flows += other.aborted_flows;
        self.fault_events += other.fault_events;
        self.route_cache.merge(&other.route_cache);
        self.fluid.merge(&other.fluid);
    }

    /// Total packets handled across all nodes.
    pub fn total_node_packets(&self) -> u64 {
        self.node_packets.iter().sum()
    }

    /// Total packets carried across all links.
    pub fn total_link_packets(&self) -> u64 {
        self.link_packets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = ProfileData::new(2, 1);
        a.node_packets = vec![1, 2];
        a.link_packets = vec![3];
        a.drops = 1;
        let mut b = ProfileData::new(2, 1);
        b.node_packets = vec![10, 20];
        b.link_packets = vec![30];
        b.completed_flows = 2;
        b.unroutable = 5;
        b.fault_drops = 7;
        b.aborted_flows = 3;
        b.fault_events = 4;
        b.route_cache = RouteCacheStats {
            hits: 8,
            misses: 5,
            evictions: 2,
        };
        a.route_cache.hits = 1;
        a.merge(&b);
        assert_eq!(a.node_packets, vec![11, 22]);
        assert_eq!(a.link_packets, vec![33]);
        assert_eq!(a.drops, 1);
        assert_eq!(a.completed_flows, 2);
        assert_eq!(a.unroutable, 5);
        assert_eq!(a.fault_drops, 7);
        assert_eq!(a.aborted_flows, 3);
        assert_eq!(a.fault_events, 4);
        assert_eq!(
            a.route_cache,
            RouteCacheStats {
                hits: 9,
                misses: 5,
                evictions: 2,
            }
        );
        assert_eq!(a.total_node_packets(), 33);
        assert_eq!(a.total_link_packets(), 33);
    }

    #[test]
    #[should_panic]
    fn merge_size_mismatch_panics() {
        let mut a = ProfileData::new(2, 1);
        let b = ProfileData::new(3, 1);
        a.merge(&b);
    }
}
