//! # massf-engine
//!
//! A conservative parallel discrete-event simulation (PDES) kernel in the
//! DaSSF family, for the `massf-rs` reproduction of *Realistic Large-Scale
//! Online Network Simulation* (Liu & Chien, SC 2004).
//!
//! The MaSSF simulator of the paper runs one event-driven engine per
//! cluster node and synchronizes all engines with a global barrier every
//! *minimum link latency* (MLL) of virtual time: any event crossing
//! between engines is guaranteed (by link latency ≥ MLL) to arrive in a
//! later window, so each window executes with no rollbacks. This crate
//! implements that design:
//!
//! * [`SimTime`] — nanosecond-resolution virtual time.
//! * [`Model`] — the event-handling trait implemented by simulation
//!   models; handlers may touch only their target LP's state, which makes
//!   sequential and parallel execution bit-identical.
//! * [`run_sequential`] / [`run_sequential_windowed`] — reference
//!   executor; the windowed variant additionally attributes events to
//!   partitions and windows, producing the per-window load traces that
//!   drive the paper's evaluation metrics.
//! * [`run_parallel`] / [`try_run_parallel`] — real multi-threaded
//!   barrier-windowed executor (one thread per partition) with lock-free
//!   per-pair outbox exchange and empty-window fast-forward; the `try_`
//!   form returns a structured [`MassfError::LookaheadViolation`]
//!   instead of panicking, and [`try_run_parallel_observed`] wraps every
//!   barrier in a [`BarrierObserver`] for bench-side sync-cost
//!   measurement. The pre-overhaul executor survives as
//!   [`baseline::run_parallel_locked`] for A/B benchmarking.
//! * [`synccost`] — the TeraGrid cluster synchronization-cost model of
//!   the paper's Figure 5, plus a live barrier-cost measurement.
//! * [`rebalance`] — the online re-partitioning decision layer: epoch
//!   geometry, deterministic per-partition load folding, and the
//!   integer-only imbalance trigger that drives mid-run LP migration
//!   (the move search lives in `massf-partition`, the migration
//!   transport in the snapshot session layer).
//!
//! Determinism: every event carries a `(source LP, per-source counter)`
//! tag; heaps order by `(time, tag)`. Since handlers only touch target-LP
//! state, the per-LP event sequences — and therefore all model state —
//! are identical under sequential and parallel execution (property-tested
//! in this crate and in the integration suite).

#![forbid(unsafe_code)]

pub mod arena;
pub mod baseline;
pub mod event;
pub mod model;
pub mod par;
pub mod rebalance;
pub mod resume;
pub mod seq;
pub mod stats;
pub mod synccost;
pub mod time;

pub use arena::{EventArena, EventHandle};
pub use event::{external_tag, EventRecord, LpId, EXTERNAL_SOURCE};
pub use massf_topology::MassfError;
pub use model::{seed_events, Emitter, Model};
pub use par::{
    run_parallel, try_run_parallel, try_run_parallel_observed, try_run_parallel_resumable,
    try_run_parallel_resumable_observed, BarrierObserver, NoopBarrierObserver,
};
pub use rebalance::{partition_loads, should_rebalance, RebalanceConfig, RebalanceCounters};
pub use resume::ResumeState;
pub use seq::{run_sequential, run_sequential_resumable, run_sequential_windowed};
pub use stats::{imbalance_permille, ExecutionStats, TRACE_BUCKETS};
pub use synccost::SyncCostModel;
pub use time::SimTime;
