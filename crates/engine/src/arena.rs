//! Per-executor event arenas: slab-allocated event payloads behind
//! generation-checked handles.
//!
//! The executors keep event *payloads* out of their priority queues:
//! each pending event's payload lives in a slot of an [`EventArena`]
//! owned by the executing thread, and the heap orders compact
//! [`QueuedEvent`] entries (time, tag, target, handle — 32 bytes)
//! instead of full `EventRecord`s. Slots are recycled through a LIFO
//! free list the moment their event executes, which generalizes the
//! outbox buffer ping-pong of the parallel executor (recycled at window
//! boundaries) down to every single payload: in steady state the hot
//! loop performs no allocator calls — push/pop traffic reuses slots and
//! the heap's existing capacity.
//!
//! Handles carry a per-slot generation stamp; taking a payload bumps
//! the generation, so a stale or double-freed handle is detected
//! instead of silently yielding another event's payload. Slot indices
//! are a pure function of the arena's insert/take sequence (LIFO free
//! list), which in turn is the partition's deterministic event order —
//! but handles never leave the executing thread, so recycling order
//! cannot influence simulation results.

use crate::event::{EventRecord, LpId};
use crate::time::SimTime;
use massf_topology::MassfError;
use std::cmp::Ordering;

/// A generation-checked reference to a payload slot in an
/// [`EventArena`]. Valid until the payload is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    index: u32,
    gen: u32,
}

/// Slab of pending event payloads with free-list slot recycling.
pub struct EventArena<M> {
    slots: Vec<Option<M>>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl<M> Default for EventArena<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventArena<M> {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Store `payload`, recycling a freed slot when one is available.
    pub fn insert(&mut self, payload: M) -> EventHandle {
        match self.free.pop() {
            Some(index) => {
                self.slots[index as usize] = Some(payload);
                EventHandle {
                    index,
                    gen: self.gens[index as usize],
                }
            }
            None => {
                // simlint: allow(cast-lossy) -- slot count is bounded by simultaneously pending events, far below u32::MAX
                let index = self.slots.len() as u32;
                self.slots.push(Some(payload));
                self.gens.push(0);
                EventHandle { index, gen: 0 }
            }
        }
    }

    /// Remove and return the payload behind `handle`, releasing its
    /// slot for reuse.
    ///
    /// # Panics
    /// Panics when `handle` is stale: its slot was already taken (the
    /// generation moved on). This is an executor bug, never a model
    /// bug — handles are created and consumed by the engine only.
    pub fn take(&mut self, handle: EventHandle) -> M {
        let i = handle.index as usize;
        assert_eq!(self.gens[i], handle.gen, "stale event handle");
        let payload = self.slots[i]
            .take()
            .expect("generation-live slot holds a payload");
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(handle.index);
        payload
    }

    /// Fallible form of [`EventArena::take`]: returns
    /// [`MassfError::StaleEventHandle`] instead of panicking when the
    /// handle is stale or out of range. The `try_` executors and the
    /// snapshot restore/drain paths use this so that slab misuse
    /// surfaces as a structured error, never a panic; the infallible
    /// hot loop keeps the assert-based [`EventArena::take`].
    pub fn try_take(&mut self, handle: EventHandle) -> Result<M, MassfError> {
        let i = handle.index as usize;
        let stale = || MassfError::StaleEventHandle {
            index: handle.index,
            gen: handle.gen,
        };
        if self.gens.get(i) != Some(&handle.gen) {
            return Err(stale());
        }
        let payload = self.slots[i].take().ok_or_else(stale)?;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(handle.index);
        Ok(payload)
    }

    /// Payloads currently stored.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Slots ever grown (high-water mark of simultaneous pending
    /// events).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Move a full record's payload into the arena, returning the
    /// compact heap entry for it.
    pub(crate) fn enqueue(&mut self, rec: EventRecord<M>) -> QueuedEvent {
        let handle = self.insert(rec.payload);
        QueuedEvent {
            time: rec.time,
            tag: rec.tag,
            target: rec.target,
            handle,
        }
    }
}

/// A pending event as the executor heaps see it: the deterministic
/// ordering key inline, the payload by arena handle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub time: SimTime,
    pub tag: u64,
    pub target: LpId,
    pub handle: EventHandle,
}

/// Size budget: time + tag (16) + target + handle (12) pads to 32
/// bytes — two entries per cache line in the heap's backing array,
/// independent of how large the model's payload type is.
const _: () = assert!(std::mem::size_of::<QueuedEvent>() <= 32);

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tag == other.tag
    }
}
impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.tag.cmp(&other.tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut arena = EventArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.take(a), "a");
        assert_eq!(arena.take(b), "b");
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.capacity(), 2);
    }

    #[test]
    fn slots_recycle_lifo_without_growth() {
        let mut arena = EventArena::new();
        let handles: Vec<_> = (0..4).map(|i| arena.insert(i)).collect();
        for h in handles {
            arena.take(h);
        }
        // Steady-state churn reuses the four slots, most-recently-freed
        // first, and never grows the slab.
        for round in 0..3 {
            let h = arena.insert(round);
            assert_eq!(arena.capacity(), 4);
            assert_eq!(arena.take(h), round);
        }
    }

    #[test]
    #[should_panic(expected = "stale event handle")]
    fn stale_handle_is_rejected() {
        let mut arena = EventArena::new();
        let h = arena.insert(1u8);
        arena.take(h);
        let _ = arena.insert(2u8); // reuses the slot under a new generation
        arena.take(h); // old handle must not see the new payload
    }

    #[test]
    fn try_take_reports_stale_and_out_of_range() {
        let mut arena = EventArena::new();
        let h = arena.insert(1u8);
        assert_eq!(arena.try_take(h), Ok(1u8));
        assert!(matches!(
            arena.try_take(h),
            Err(MassfError::StaleEventHandle { index: 0, .. })
        ));
        let _ = arena.insert(2u8); // slot reused under a new generation
        assert!(
            arena.try_take(h).is_err(),
            "old generation must not see the new payload"
        );
    }

    #[test]
    fn queued_events_order_by_time_then_tag() {
        let mut arena = EventArena::new();
        let qe = |arena: &mut EventArena<u8>, t: u64, tag: u64| {
            arena.enqueue(EventRecord {
                time: SimTime::from_ns(t),
                target: LpId(0),
                tag,
                payload: 0,
            })
        };
        let a = qe(&mut arena, 1, 9);
        let b = qe(&mut arena, 2, 0);
        let c = qe(&mut arena, 1, 1);
        assert!(a < b);
        assert!(c < a);
        assert_eq!(a, qe(&mut arena, 1, 9), "identity is (time, tag)");
    }
}
