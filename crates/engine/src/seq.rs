//! Sequential executors.
//!
//! [`run_sequential`] is the reference executor (one global heap).
//! [`run_sequential_windowed`] processes the same global order but
//! additionally attributes every event to a `(window, partition)` cell,
//! producing the trace the cluster performance model consumes. Because
//! window boundaries never change event order, both produce identical
//! model states.

use crate::arena::{EventArena, QueuedEvent};
use crate::event::{EventRecord, LpId};
use crate::model::{seed_events, Emitter, Model};
use crate::resume::ResumeState;
use crate::stats::{ExecutionStats, WindowAccumulator};
use crate::time::SimTime;
use massf_topology::MassfError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Run `model` until `end_time` (exclusive), starting from `initial`
/// `(time, target, payload)` events. Returns per-LP statistics.
pub fn run_sequential<M: Model>(
    model: &mut M,
    lp_count: usize,
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
) -> ExecutionStats {
    run_inner(model, lp_count, initial, end_time, None)
}

/// Like [`run_sequential`], but also count events per `(window,
/// partition)` given the LP→partition `assignment` and the window length.
///
/// # Panics
/// Panics if `window` is zero or `assignment.len() != lp_count`.
pub fn run_sequential_windowed<M: Model>(
    model: &mut M,
    lp_count: usize,
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
    assignment: &[u32],
    partitions: usize,
) -> ExecutionStats {
    assert!(window > SimTime::ZERO, "window must be positive");
    assert_eq!(assignment.len(), lp_count);
    run_inner(
        model,
        lp_count,
        initial,
        end_time,
        Some((window, assignment, partitions)),
    )
}

/// Continue a paused sequential run from `resume` until `end_time`,
/// returning the stats of the executed segment and the new frontier
/// (pending events at `end_time` plus advanced LP counters). Seeding a
/// [`ResumeState::fresh`] frontier whose events came through
/// [`seed_events`] is exactly [`run_sequential`]; chaining segments is
/// bit-identical to one straight-through run because the frontier
/// preserves every `(time, tag)` ordering key.
///
/// `resume` is validated first (it may come from a snapshot file):
/// malformed frontiers yield [`MassfError::InvalidConfig`], never a
/// panic.
#[allow(clippy::type_complexity)] // (stats, frontier) pair is the natural segment result
pub fn run_sequential_resumable<M: Model>(
    model: &mut M,
    lp_count: usize,
    resume: ResumeState<M::Event>,
    end_time: SimTime,
) -> Result<(ExecutionStats, ResumeState<M::Event>), MassfError> {
    resume.validate(lp_count)?;
    Ok(run_core(
        model,
        lp_count,
        resume.events,
        resume.counters,
        end_time,
        None,
        true,
    ))
}

fn run_inner<M: Model>(
    model: &mut M,
    lp_count: usize,
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    windowed: Option<(SimTime, &[u32], usize)>,
) -> ExecutionStats {
    let pending = seed_events(initial);
    let counters = vec![0u32; lp_count];
    run_core(
        model, lp_count, pending, counters, end_time, windowed, false,
    )
    .0
}

fn run_core<M: Model>(
    model: &mut M,
    lp_count: usize,
    pending: Vec<EventRecord<M::Event>>,
    mut counters: Vec<u32>,
    end_time: SimTime,
    windowed: Option<(SimTime, &[u32], usize)>,
    collect_resume: bool,
) -> (ExecutionStats, ResumeState<M::Event>) {
    let mut stats = ExecutionStats::new(lp_count);
    // Payloads live in the arena; the heap orders 32-byte handles. Slots
    // recycle as events execute, so the steady-state loop is
    // allocation-free (see `crate::arena`).
    let mut arena: EventArena<M::Event> = EventArena::new();
    let mut heap: BinaryHeap<Reverse<QueuedEvent>> = BinaryHeap::new();
    for ev in pending {
        heap.push(Reverse(arena.enqueue(ev)));
    }
    let mut out_buf: Vec<EventRecord<M::Event>> = Vec::new();

    let mut acc = windowed.map(|(window, _, partitions)| {
        let n_windows = end_time.as_ns().div_ceil(window.as_ns()) as usize;
        WindowAccumulator::new(partitions, n_windows)
    });

    // Peek before popping: events at or past `end_time` stay queued, so
    // the frontier drain below sees the complete pending set.
    while let Some(&Reverse(head)) = heap.peek() {
        if head.time >= end_time {
            break;
        }
        let Reverse(ev) = heap.pop().expect("peeked entry pops");
        let payload = arena.take(ev.handle);
        let lp = ev.target;
        debug_assert!(lp.index() < lp_count, "event for unknown LP {lp:?}");
        {
            let mut emitter = Emitter::new(ev.time, lp.0, &mut counters[lp.index()], &mut out_buf);
            model.handle(lp, ev.time, payload, &mut emitter);
        }
        stats.lp_events[lp.index()] += 1;
        stats.total_events += 1;
        if let (Some(acc), Some((window, assignment, _))) = (acc.as_mut(), windowed) {
            let w = (ev.time.as_ns() / window.as_ns()) as usize;
            let p = assignment[lp.index()] as usize;
            acc.record(w, p);
        }
        for new_ev in out_buf.drain(..) {
            debug_assert!(new_ev.time >= ev.time, "event scheduled in the past");
            heap.push(Reverse(arena.enqueue(new_ev)));
        }
    }
    if let (Some(acc), Some((window, _, _))) = (acc, windowed) {
        acc.finish(window, &mut stats);
    }
    stats.end_time = end_time;

    // Drain the frontier in heap order (ascending `(time, tag)`), so the
    // returned events are sorted by construction.
    let mut events = Vec::new();
    if collect_resume {
        events.reserve(heap.len());
        while let Some(Reverse(ev)) = heap.pop() {
            events.push(EventRecord {
                time: ev.time,
                target: ev.target,
                tag: ev.tag,
                payload: arena.take(ev.handle),
            });
        }
    }
    (stats, ResumeState { events, counters })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each LP forwards a token to the next LP after 1 ms, recording the
    /// visit order.
    struct Ring {
        n: u32,
        visits: Vec<u32>,
    }

    impl Model for Ring {
        type Event = u8;
        fn handle(&mut self, target: LpId, _now: SimTime, _ev: u8, out: &mut Emitter<'_, u8>) {
            self.visits.push(target.0);
            out.emit(SimTime::from_ms(1), LpId((target.0 + 1) % self.n), 0);
        }
    }

    #[test]
    fn token_ring_progresses_in_time_order() {
        let mut m = Ring {
            n: 4,
            visits: vec![],
        };
        let stats = run_sequential(
            &mut m,
            4,
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
        );
        assert_eq!(m.visits, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        assert_eq!(stats.total_events, 10);
        assert_eq!(stats.lp_events, vec![3, 3, 2, 2]);
    }

    #[test]
    fn end_time_is_exclusive() {
        let mut m = Ring {
            n: 2,
            visits: vec![],
        };
        let stats = run_sequential(
            &mut m,
            2,
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(1),
        );
        // Only the event at t=0 runs; the one at exactly 1 ms is excluded.
        assert_eq!(stats.total_events, 1);
    }

    #[test]
    fn simultaneous_events_process_in_injection_order() {
        struct Recorder(Vec<u32>);
        impl Model for Recorder {
            type Event = ();
            fn handle(&mut self, t: LpId, _: SimTime, _: (), _: &mut Emitter<'_, ()>) {
                self.0.push(t.0);
            }
        }
        let mut m = Recorder(vec![]);
        run_sequential(
            &mut m,
            3,
            vec![
                (SimTime::from_ms(1), LpId(2), ()),
                (SimTime::from_ms(1), LpId(0), ()),
                (SimTime::from_ms(1), LpId(1), ()),
            ],
            SimTime::from_ms(2),
        );
        assert_eq!(m.0, vec![2, 0, 1], "ties broken by injection order");
    }

    #[test]
    fn resumable_segments_match_straight_through() {
        let mut full = Ring {
            n: 4,
            visits: vec![],
        };
        let full_stats = run_sequential(
            &mut full,
            4,
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
        );

        let mut split = Ring {
            n: 4,
            visits: vec![],
        };
        let start = ResumeState {
            events: seed_events(vec![(SimTime::ZERO, LpId(0), 0)]),
            counters: vec![0; 4],
        };
        let (s1, mid) =
            run_sequential_resumable(&mut split, 4, start, SimTime::from_ms(5)).expect("valid");
        // The event scheduled at exactly the cut time must sit in the
        // frontier, unexecuted (end_time is exclusive).
        assert_eq!(mid.events.len(), 1);
        assert_eq!(mid.events[0].time, SimTime::from_ms(5));
        let (s2, fin) =
            run_sequential_resumable(&mut split, 4, mid, SimTime::from_ms(10)).expect("valid");
        assert_eq!(split.visits, full.visits, "chained segments = one run");
        assert_eq!(s1.total_events + s2.total_events, full_stats.total_events);
        assert_eq!(fin.events.len(), 1, "next hop stays pending at the end");
    }

    #[test]
    fn resumable_rejects_malformed_frontier() {
        let mut m = Ring {
            n: 2,
            visits: vec![],
        };
        let bad = ResumeState::<u8> {
            events: vec![],
            counters: vec![0; 3], // wrong LP count
        };
        assert!(run_sequential_resumable(&mut m, 2, bad, SimTime::from_ms(1)).is_err());
    }

    #[test]
    fn windowed_counts_attribute_correctly() {
        let mut m = Ring {
            n: 2,
            visits: vec![],
        };
        // LP0 -> partition 0, LP1 -> partition 1; 1 ms window; events at
        // t=0(LP0),1(LP1),2(LP0),3(LP1) within end=4ms.
        let stats = run_sequential_windowed(
            &mut m,
            2,
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(4),
            SimTime::from_ms(1),
            &[0, 1],
            2,
        );
        assert_eq!(stats.window_count(), 4);
        // 4 windows at 1 window per bucket: buckets mirror windows.
        assert_eq!(stats.bucket_critical, vec![1, 1, 1, 1]);
        assert_eq!(stats.bucket_totals, vec![1, 1, 1, 1]);
        assert_eq!(stats.partition_totals, vec![2, 2]);
        assert_eq!(stats.critical_path_events(), 4);
        assert_eq!(stats.windows_executed, 4);
        assert_eq!(stats.windows_skipped, 0);
    }

    #[test]
    fn windowed_and_plain_runs_agree_on_state() {
        let mut a = Ring {
            n: 5,
            visits: vec![],
        };
        let mut b = Ring {
            n: 5,
            visits: vec![],
        };
        let init = vec![
            (SimTime::ZERO, LpId(0), 0u8),
            (SimTime::from_ms(2), LpId(3), 0u8),
        ];
        run_sequential(&mut a, 5, init.clone(), SimTime::from_ms(20));
        run_sequential_windowed(
            &mut b,
            5,
            init,
            SimTime::from_ms(20),
            SimTime::from_ms(3),
            &[0, 0, 1, 1, 1],
            2,
        );
        assert_eq!(a.visits, b.visits);
    }

    #[test]
    fn event_rate_normalization() {
        let mut m = Ring {
            n: 2,
            visits: vec![],
        };
        let stats = run_sequential_windowed(
            &mut m,
            2,
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_secs(1),
            SimTime::from_ms(100),
            &[0, 1],
            2,
        );
        let rates = stats.partition_event_rates();
        assert_eq!(rates.len(), 2);
        assert!((rates[0] + rates[1] - stats.total_events as f64).abs() < 1e-9);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::stats::TRACE_BUCKETS;

    /// Self-ticking LP: one event per millisecond.
    struct Ticker;
    impl crate::model::Model for Ticker {
        type Event = ();
        fn handle(&mut self, t: LpId, _: SimTime, _: (), out: &mut crate::model::Emitter<'_, ()>) {
            out.emit(SimTime::from_ms(1), t, ());
        }
    }

    #[test]
    fn coarse_trace_covers_long_runs_with_bounded_buckets() {
        let mut m = Ticker;
        // 2000 windows of 1 ms: must be bucketed down to ≤ TRACE_BUCKETS.
        let stats = run_sequential_windowed(
            &mut m,
            1,
            vec![(SimTime::ZERO, LpId(0), ())],
            SimTime::from_ms(2000),
            SimTime::from_ms(1),
            &[0],
            1,
        );
        assert_eq!(stats.window_count(), 2000);
        assert!(stats.coarse_trace.len() <= TRACE_BUCKETS);
        assert!(stats.windows_per_bucket >= 2);
        let bucket_total: u64 = stats.coarse_trace.iter().flatten().sum();
        assert_eq!(bucket_total, stats.total_events);
    }

    #[test]
    fn event_on_window_boundary_lands_in_later_window() {
        let mut m = Ticker;
        // Events at t = 0, 1, 2, 3 ms with 2 ms windows: the t = 2 ms
        // event belongs to window 1 (windows are half-open [t0, t1)).
        let stats = run_sequential_windowed(
            &mut m,
            1,
            vec![(SimTime::ZERO, LpId(0), ())],
            SimTime::from_ms(4),
            SimTime::from_ms(2),
            &[0],
            1,
        );
        assert_eq!(stats.bucket_totals, vec![2, 2]);
    }

    #[test]
    fn empty_initial_events_is_a_clean_noop() {
        let mut m = Ticker;
        let stats = run_sequential(&mut m, 3, vec![], SimTime::from_secs(1));
        assert_eq!(stats.total_events, 0);
        assert!(stats.lp_events.iter().all(|&c| c == 0));
    }
}
