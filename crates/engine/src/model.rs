//! The simulation-model trait and the event emitter handed to handlers.

use crate::event::{make_tag, EventRecord, LpId};
use crate::time::SimTime;

/// A discrete-event simulation model.
///
/// The engine calls [`Model::handle`] for each event in deterministic
/// `(time, tag)` order per LP. **Handlers must only read and write state
/// belonging to the target LP** (plus shared immutable data); this is the
/// contract that makes parallel window execution equivalent to sequential
/// execution. Cross-LP effects must travel as events.
pub trait Model: Send {
    /// The event payload type.
    type Event: Send + 'static;

    /// Handle `event` arriving at `target` at virtual time `now`,
    /// scheduling follow-up events through `out`.
    fn handle(
        &mut self,
        target: LpId,
        now: SimTime,
        event: Self::Event,
        out: &mut Emitter<'_, Self::Event>,
    );
}

/// Collects events emitted by a handler, assigning deterministic tags.
pub struct Emitter<'a, M> {
    now: SimTime,
    source: u32,
    counter: &'a mut u32,
    buffer: &'a mut Vec<EventRecord<M>>,
}

impl<'a, M> Emitter<'a, M> {
    pub(crate) fn new(
        now: SimTime,
        source: u32,
        counter: &'a mut u32,
        buffer: &'a mut Vec<EventRecord<M>>,
    ) -> Self {
        Emitter {
            now,
            source,
            counter,
            buffer,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` for `target` after `delay` (may be zero for
    /// same-LP immediate self-scheduling; cross-partition events need
    /// `delay ≥` the synchronization window, which the executors check).
    pub fn emit(&mut self, delay: SimTime, target: LpId, payload: M) {
        let tag = make_tag(self.source, *self.counter);
        *self.counter = self
            .counter
            .checked_add(1)
            .expect("per-LP emission counter overflow");
        self.buffer.push(EventRecord {
            time: self.now + delay,
            target,
            tag,
            payload,
        });
    }
}

/// Tag and collect a batch of externally injected initial events.
/// They share the reserved external source id and are ordered by their
/// position in `events`.
pub fn seed_events<M>(events: Vec<(SimTime, LpId, M)>) -> Vec<EventRecord<M>> {
    events
        .into_iter()
        .enumerate()
        .map(|(i, (time, target, payload))| EventRecord {
            time,
            target,
            // simlint: allow(cast-lossy) -- sequence index; 2^32 initial events is far past any supported scale
            tag: make_tag(crate::event::EXTERNAL_SOURCE, i as u32),
            payload,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_assigns_monotone_tags_and_times() {
        let mut counter = 5u32;
        let mut buf = Vec::new();
        {
            let mut em = Emitter::new(SimTime::from_ms(2), 9, &mut counter, &mut buf);
            em.emit(SimTime::from_ms(1), LpId(3), "a");
            em.emit(SimTime::ZERO, LpId(4), "b");
        }
        assert_eq!(counter, 7);
        assert_eq!(buf[0].time, SimTime::from_ms(3));
        assert_eq!(buf[1].time, SimTime::from_ms(2));
        assert!(buf[0].tag < buf[1].tag);
        assert_eq!(buf[0].tag >> 32, 9);
    }

    #[test]
    fn seed_events_ordered_by_injection() {
        let seeded = seed_events(vec![
            (SimTime::from_ms(1), LpId(0), 1u8),
            (SimTime::from_ms(1), LpId(1), 2u8),
        ]);
        assert!(seeded[0].tag < seeded[1].tag);
        assert_eq!(seeded[0].tag >> 32, u32::MAX as u64);
    }
}
