//! Resumable execution: the pending-event frontier captured at a
//! virtual-time boundary, re-feedable into either executor.
//!
//! A [`ResumeState`] is everything the *engine* needs to continue a run
//! as if it had never stopped: the pending events (each still carrying
//! its original `(time, tag)` ordering key) and the per-LP emission
//! counters that keep future tags unique. Because tags are assigned
//! from per-LP counters and heaps order by `(time, tag)`, feeding a
//! drained frontier back in reproduces the exact event order of a
//! straight-through run — at any thread count. Model state travels
//! separately (the snapshot layer serializes it); the engine only owns
//! the queue.
//!
//! States may cross process boundaries (that is the point), so
//! [`ResumeState::validate`] treats its input as hostile: resumable
//! executors reject malformed frontiers with structured errors instead
//! of panicking or silently diverging.

use crate::event::{split_tag, EventRecord, EXTERNAL_SOURCE};
use crate::time::SimTime;
use massf_topology::MassfError;

/// The engine-side continuation point of a paused run.
#[derive(Debug, Clone)]
pub struct ResumeState<M> {
    /// Pending events, strictly sorted by `(time, tag)`.
    pub events: Vec<EventRecord<M>>,
    /// Per-LP emission counters at the boundary (next tag counter each
    /// LP will assign).
    pub counters: Vec<u32>,
}

impl<M> ResumeState<M> {
    /// The state of a run that has not started: no pending events, all
    /// counters zero.
    pub fn fresh(lp_count: usize) -> Self {
        ResumeState {
            events: Vec::new(),
            counters: vec![0; lp_count],
        }
    }

    /// Earliest pending event time, if any. Because `events` is sorted
    /// by `(time, tag)`, this is `O(1)`; drivers use it to skip engine
    /// invocations entirely across empty stretches of virtual time
    /// (e.g. rebalance epochs in which nothing is scheduled).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.first().map(|ev| ev.time)
    }

    /// Structural validation against `lp_count`. Rejects anything a
    /// corrupted or handcrafted snapshot could smuggle past the type
    /// system: counter-vector length mismatch, events targeting unknown
    /// LPs, an unsorted or duplicated `(time, tag)` order (heap
    /// tie-breaking on duplicate keys is unspecified, so duplicates
    /// would break bit-identity), and tags claiming a source counter
    /// the source LP has not issued yet (which could collide with a
    /// future emission).
    pub fn validate(&self, lp_count: usize) -> Result<(), MassfError> {
        if self.counters.len() != lp_count {
            return Err(MassfError::InvalidConfig(format!(
                "resume state carries {} LP counters for {} LPs",
                self.counters.len(),
                lp_count
            )));
        }
        let mut prev: Option<(SimTime, u64)> = None;
        for ev in &self.events {
            if ev.target.index() >= lp_count {
                return Err(MassfError::InvalidConfig(format!(
                    "resume event targets unknown LP {}",
                    ev.target.0
                )));
            }
            let key = (ev.time, ev.tag);
            if prev.is_some_and(|p| key <= p) {
                return Err(MassfError::InvalidConfig(format!(
                    "resume events not strictly sorted by (time, tag) at tag {:#x}",
                    ev.tag
                )));
            }
            prev = Some(key);
            let (source, counter) = split_tag(ev.tag);
            if source != EXTERNAL_SOURCE {
                let issued = self.counters.get(source as usize).copied().ok_or_else(|| {
                    MassfError::InvalidConfig(format!(
                        "resume event tag names unknown source LP {source}"
                    ))
                })?;
                if counter >= issued {
                    return Err(MassfError::InvalidConfig(format!(
                        "resume event counter {counter} not below source LP {source}'s \
                         issued counter {issued}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{external_tag, LpId};

    fn rec(t: u64, tag: u64, target: u32) -> EventRecord<u8> {
        EventRecord {
            time: SimTime::from_ns(t),
            target: LpId(target),
            tag,
            payload: 0,
        }
    }

    #[test]
    fn fresh_state_is_valid() {
        assert_eq!(ResumeState::<u8>::fresh(3).validate(3), Ok(()));
    }

    #[test]
    fn next_event_time_reads_the_sorted_head() {
        let mut s = ResumeState::<u8>::fresh(2);
        assert_eq!(s.next_event_time(), None);
        s.events = vec![rec(5, external_tag(0), 0), rec(9, external_tag(1), 1)];
        assert_eq!(s.next_event_time(), Some(SimTime::from_ns(5)));
    }

    #[test]
    fn counter_length_mismatch_rejected() {
        let s = ResumeState::<u8>::fresh(3);
        assert!(matches!(s.validate(4), Err(MassfError::InvalidConfig(_))));
    }

    #[test]
    fn unknown_target_rejected() {
        let mut s = ResumeState::fresh(2);
        s.events.push(rec(1, external_tag(0), 7));
        assert!(s.validate(2).is_err());
    }

    #[test]
    fn unsorted_and_duplicate_keys_rejected() {
        let mut s = ResumeState::fresh(2);
        s.events = vec![rec(5, external_tag(1), 0), rec(1, external_tag(0), 1)];
        assert!(s.validate(2).is_err());
        s.events = vec![rec(5, external_tag(1), 0), rec(5, external_tag(1), 1)];
        assert!(s.validate(2).is_err());
    }

    #[test]
    fn tag_counter_must_be_issued() {
        let mut s = ResumeState::fresh(2);
        // Source LP 1 claims counter 3 but has only issued 2 tags.
        s.counters = vec![0, 2];
        s.events = vec![rec(9, (1u64 << 32) | 3, 0)];
        assert!(s.validate(2).is_err());
        s.counters = vec![0, 4];
        assert_eq!(s.validate(2), Ok(()));
        // External tags are exempt from counter accounting.
        s.events = vec![rec(9, external_tag(1_000_000), 0)];
        assert_eq!(s.validate(2), Ok(()));
    }
}
