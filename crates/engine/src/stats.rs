//! Execution statistics: the raw material of the paper's evaluation.
//!
//! The paper measures load as "the event rate of the simulation kernel
//! (essentially one per network packet)" per engine node (Section 4.1).
//! The executors record per-LP totals and, when windowed, per-window
//! aggregates. Because a fine window (≈ MLL) over a long run can mean
//! hundreds of thousands of windows, the per-window × per-partition
//! matrix is **not** materialized; instead the executors stream three
//! aggregates sufficient for the paper's metrics:
//!
//! * `per_window_max[w]` — the busiest partition's event count in window
//!   `w` (drives the barrier-synchronized runtime model: every window
//!   costs `max_p events + sync`),
//! * `per_window_total[w]` — all events in window `w`,
//! * `partition_totals[p]` — events per partition (load imbalance), and
//! * a bucketed per-partition time series (≤ [`TRACE_BUCKETS`] buckets)
//!   for load-variation plots (the paper's Figure 3).

use crate::time::SimTime;

/// Maximum number of buckets kept in the coarse per-partition trace.
pub const TRACE_BUCKETS: usize = 512;

/// Statistics from one simulation run.
#[derive(Debug, Clone)]
pub struct ExecutionStats {
    /// Events handled per LP.
    pub lp_events: Vec<u64>,
    /// Window length used (zero when not windowed).
    pub window: SimTime,
    /// Busiest partition's event count, per window.
    pub per_window_max: Vec<u64>,
    /// Total events per window.
    pub per_window_total: Vec<u64>,
    /// Total events per partition.
    pub partition_totals: Vec<u64>,
    /// `coarse_trace[b][p]`: events of partition `p` in bucket `b`
    /// (each bucket spans `windows_per_bucket` windows).
    pub coarse_trace: Vec<Vec<u64>>,
    /// Windows per coarse bucket.
    pub windows_per_bucket: usize,
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Total events handled.
    pub total_events: u64,
}

impl ExecutionStats {
    pub(crate) fn new(lp_count: usize) -> Self {
        ExecutionStats {
            lp_events: vec![0; lp_count],
            window: SimTime::ZERO,
            per_window_max: Vec::new(),
            per_window_total: Vec::new(),
            partition_totals: Vec::new(),
            coarse_trace: Vec::new(),
            windows_per_bucket: 1,
            end_time: SimTime::ZERO,
            total_events: 0,
        }
    }

    /// Per-partition event *rate* (events per virtual second).
    pub fn partition_event_rates(&self) -> Vec<f64> {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            return vec![0.0; self.partition_totals.len()];
        }
        self.partition_totals
            .iter()
            .map(|&t| t as f64 / secs)
            .collect()
    }

    /// Number of synchronization windows executed.
    pub fn window_count(&self) -> usize {
        self.per_window_max.len()
    }

    /// Sum over windows of the busiest partition's event count — the
    /// critical-path event work of a barrier-synchronized run.
    pub fn critical_path_events(&self) -> u64 {
        self.per_window_max.iter().sum()
    }
}

/// Streaming accumulator used by the executors to build windowed stats
/// without materializing the window × partition matrix.
#[derive(Debug, Clone)]
pub(crate) struct WindowAccumulator {
    partitions: usize,
    n_windows: usize,
    windows_per_bucket: usize,
    current_window: usize,
    current_counts: Vec<u64>,
    per_window_max: Vec<u64>,
    per_window_total: Vec<u64>,
    partition_totals: Vec<u64>,
    coarse_trace: Vec<Vec<u64>>,
}

impl WindowAccumulator {
    pub(crate) fn new(partitions: usize, n_windows: usize) -> Self {
        let windows_per_bucket = n_windows.div_ceil(TRACE_BUCKETS).max(1);
        let buckets = n_windows.div_ceil(windows_per_bucket);
        WindowAccumulator {
            partitions,
            n_windows,
            windows_per_bucket,
            current_window: 0,
            current_counts: vec![0; partitions],
            per_window_max: Vec::with_capacity(n_windows),
            per_window_total: Vec::with_capacity(n_windows),
            partition_totals: vec![0; partitions],
            coarse_trace: vec![vec![0; partitions]; buckets],
        }
    }

    /// Record one event of partition `p` in window `w`. Windows must be
    /// non-decreasing (guaranteed by time-ordered execution).
    pub(crate) fn record(&mut self, w: usize, p: usize) {
        debug_assert!(w >= self.current_window, "windows must advance");
        while self.current_window < w {
            self.flush_current();
        }
        self.current_counts[p] += 1;
        self.partition_totals[p] += 1;
        if let Some(bucket) = self.coarse_trace.get_mut(w / self.windows_per_bucket) {
            bucket[p] += 1;
        }
    }

    fn flush_current(&mut self) {
        let max = self.current_counts.iter().copied().max().unwrap_or(0);
        let total = self.current_counts.iter().sum();
        self.per_window_max.push(max);
        self.per_window_total.push(total);
        for c in self.current_counts.iter_mut() {
            *c = 0;
        }
        self.current_window += 1;
    }

    /// Finish: flush through `n_windows` and write into `stats`.
    pub(crate) fn finish(mut self, window: SimTime, stats: &mut ExecutionStats) {
        while self.current_window < self.n_windows {
            self.flush_current();
        }
        stats.window = window;
        stats.per_window_max = self.per_window_max;
        stats.per_window_total = self.per_window_total;
        stats.partition_totals = self.partition_totals;
        stats.coarse_trace = self.coarse_trace;
        stats.windows_per_bucket = self.windows_per_bucket;
        let _ = self.partitions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_max_total_and_totals() {
        let mut acc = WindowAccumulator::new(3, 4);
        // window 0: p0×2, p1×1
        acc.record(0, 0);
        acc.record(0, 0);
        acc.record(0, 1);
        // window 2 (window 1 empty): p2×3
        acc.record(2, 2);
        acc.record(2, 2);
        acc.record(2, 2);
        let mut stats = ExecutionStats::new(0);
        acc.finish(SimTime::from_ms(1), &mut stats);
        assert_eq!(stats.per_window_max, vec![2, 0, 3, 0]);
        assert_eq!(stats.per_window_total, vec![3, 0, 3, 0]);
        assert_eq!(stats.partition_totals, vec![2, 1, 3]);
        assert_eq!(stats.critical_path_events(), 5);
        assert_eq!(stats.window_count(), 4);
    }

    #[test]
    fn coarse_trace_buckets_many_windows() {
        let n_windows = TRACE_BUCKETS * 3;
        let mut acc = WindowAccumulator::new(2, n_windows);
        for w in 0..n_windows {
            acc.record(w, w % 2);
        }
        let mut stats = ExecutionStats::new(0);
        acc.finish(SimTime::from_ms(1), &mut stats);
        assert_eq!(stats.windows_per_bucket, 3);
        assert_eq!(stats.coarse_trace.len(), TRACE_BUCKETS);
        let bucket_sum: u64 = stats.coarse_trace.iter().flatten().sum();
        assert_eq!(bucket_sum, n_windows as u64);
        assert_eq!(stats.per_window_max.len(), n_windows);
    }

    #[test]
    fn rates_divide_by_virtual_seconds() {
        let mut s = ExecutionStats::new(0);
        s.partition_totals = vec![10, 30];
        s.end_time = SimTime::from_secs(2);
        assert_eq!(s.partition_event_rates(), vec![5.0, 15.0]);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = ExecutionStats::new(3);
        assert!(s.partition_totals.is_empty());
        assert!(s.partition_event_rates().is_empty());
        assert_eq!(s.window_count(), 0);
        assert_eq!(s.critical_path_events(), 0);
    }
}
