//! Execution statistics: the raw material of the paper's evaluation.
//!
//! The paper measures load as "the event rate of the simulation kernel
//! (essentially one per network packet)" per engine node (Section 4.1).
//! The executors record per-LP totals and, when windowed, per-window
//! aggregates. Because a fine window (≈ MLL) over a long run can mean
//! hundreds of millions of windows, **nothing here is sized
//! `O(n_windows)`**; all per-window aggregates are streamed into at most
//! [`TRACE_BUCKETS`] buckets plus exact scalar totals:
//!
//! * `bucket_critical[b]` — Σ over the windows of bucket `b` of the
//!   busiest partition's event count in that window. Summing the array
//!   gives the *exact* critical-path event count (every window costs
//!   `max_p events + sync` on a barrier-synchronized cluster); the
//!   per-bucket resolution shows where on the timeline the critical
//!   path concentrates.
//! * `bucket_totals[b]` — all events in bucket `b` (sums to
//!   `total_events`).
//! * `partition_totals[p]` — events per partition (load imbalance).
//! * `coarse_trace[b][p]` — the bucketed per-partition time series for
//!   load-variation plots (the paper's Figure 3).
//!
//! Window *counts* stay exact as scalars: `n_windows` (the nominal
//! barrier count: every MLL window of the horizon, which is what the
//! cluster performance model charges sync cost for), `windows_executed`
//! (windows that actually contained events — the only ones the
//! fast-forwarding parallel executor synchronizes for), and
//! `windows_skipped` (= `n_windows - windows_executed`).

use crate::time::SimTime;

/// Maximum number of buckets kept in any per-window aggregate
/// (`bucket_critical`, `bucket_totals`, `coarse_trace`).
pub const TRACE_BUCKETS: usize = 512;

/// Statistics from one simulation run.
#[derive(Debug, Clone)]
pub struct ExecutionStats {
    /// Events handled per LP.
    pub lp_events: Vec<u64>,
    /// Window length used (zero when not windowed).
    pub window: SimTime,
    /// Nominal window count: `ceil(end_time / window)` (zero when not
    /// windowed). This is the number of barrier rounds a conservative
    /// cluster without empty-window fast-forward executes, and what the
    /// cluster performance model charges sync cost for.
    pub n_windows: usize,
    /// Σ over the windows of bucket `b` of the busiest partition's event
    /// count in that window. `bucket_critical.iter().sum()` is the exact
    /// critical-path event count.
    pub bucket_critical: Vec<u64>,
    /// Total events per bucket (sums to `total_events`).
    pub bucket_totals: Vec<u64>,
    /// Total events per partition.
    pub partition_totals: Vec<u64>,
    /// `coarse_trace[b][p]`: events of partition `p` in bucket `b`
    /// (each bucket spans `windows_per_bucket` windows).
    pub coarse_trace: Vec<Vec<u64>>,
    /// Windows per coarse bucket.
    pub windows_per_bucket: usize,
    /// Windows that contained at least one event. The fast-forwarding
    /// parallel executor synchronizes only for these; identical between
    /// sequential-windowed and parallel runs by construction.
    pub windows_executed: u64,
    /// Empty windows jumped over (`n_windows - windows_executed`).
    pub windows_skipped: u64,
    /// Barrier rounds the executor actually performed (zero for
    /// sequential runs, which have no barriers).
    pub barrier_rounds: u64,
    /// Measured wall-clock barrier-wait time per partition,
    /// microseconds. Empty unless the run was instrumented with a
    /// measuring [`crate::par::BarrierObserver`]; the engine itself
    /// never reads host clocks (simlint D2), so these values come from
    /// the observer and are *not* deterministic.
    pub barrier_wait_us: Vec<f64>,
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Total events handled.
    pub total_events: u64,
}

impl ExecutionStats {
    pub(crate) fn new(lp_count: usize) -> Self {
        ExecutionStats {
            lp_events: vec![0; lp_count],
            window: SimTime::ZERO,
            n_windows: 0,
            bucket_critical: Vec::new(),
            bucket_totals: Vec::new(),
            partition_totals: Vec::new(),
            coarse_trace: Vec::new(),
            windows_per_bucket: 1,
            windows_executed: 0,
            windows_skipped: 0,
            barrier_rounds: 0,
            barrier_wait_us: Vec::new(),
            end_time: SimTime::ZERO,
            total_events: 0,
        }
    }

    /// Per-partition event *rate* (events per virtual second).
    pub fn partition_event_rates(&self) -> Vec<f64> {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            return vec![0.0; self.partition_totals.len()];
        }
        self.partition_totals
            .iter()
            .map(|&t| t as f64 / secs)
            .collect()
    }

    /// Number of synchronization windows in the horizon (the nominal
    /// barrier count the cluster model charges for).
    pub fn window_count(&self) -> usize {
        self.n_windows
    }

    /// Sum over windows of the busiest partition's event count — the
    /// critical-path event work of a barrier-synchronized run. Exact:
    /// bucketing preserves the sum.
    pub fn critical_path_events(&self) -> u64 {
        self.bucket_critical.iter().sum()
    }

    /// Total measured barrier-wait time across partitions, microseconds
    /// (zero unless the run was instrumented).
    pub fn total_barrier_wait_us(&self) -> f64 {
        self.barrier_wait_us.iter().sum()
    }

    /// Max/mean load imbalance of `partition_totals` in permille — see
    /// [`imbalance_permille`]. This is the deterministic load signal a
    /// rebalancer may act on; never feed `barrier_wait_us` (measured
    /// wall clock) into simulation decisions.
    pub fn imbalance_permille(&self) -> u64 {
        imbalance_permille(&self.partition_totals)
    }
}

/// Max/mean load imbalance in permille: `max(loads)·1000·k / Σloads`.
///
/// `1000` means perfectly balanced; `k·1000` means all load on one of
/// `k` parts. Empty or all-zero inputs report `1000` (nothing to
/// balance). Integer-only by construction (D4-safe): rebalance
/// decisions thresholded on this value never depend on float
/// rounding or summation order.
pub fn imbalance_permille(loads: &[u64]) -> u64 {
    let k = loads.len() as u64;
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1000;
    }
    let max = loads.iter().copied().max().unwrap_or(0);
    (max as u128 * 1000 * k as u128 / total as u128) as u64
}

/// Streaming accumulator used by the executors to build windowed stats
/// without materializing anything `O(n_windows)`: memory is
/// `O(partitions + TRACE_BUCKETS × partitions)` and advancing over an
/// empty stretch of windows is O(1) (a direct jump, not a per-window
/// flush loop).
#[derive(Debug, Clone)]
pub(crate) struct WindowAccumulator {
    n_windows: usize,
    windows_per_bucket: usize,
    current_window: usize,
    current_total: u64,
    current_counts: Vec<u64>,
    bucket_critical: Vec<u64>,
    bucket_totals: Vec<u64>,
    partition_totals: Vec<u64>,
    coarse_trace: Vec<Vec<u64>>,
    windows_executed: u64,
}

/// Bucket geometry shared by every windowed-stats producer.
pub(crate) fn bucket_layout(n_windows: usize) -> (usize, usize) {
    let windows_per_bucket = n_windows.div_ceil(TRACE_BUCKETS).max(1);
    let buckets = n_windows.div_ceil(windows_per_bucket);
    (windows_per_bucket, buckets)
}

impl WindowAccumulator {
    pub(crate) fn new(partitions: usize, n_windows: usize) -> Self {
        let (windows_per_bucket, buckets) = bucket_layout(n_windows);
        WindowAccumulator {
            n_windows,
            windows_per_bucket,
            current_window: 0,
            current_total: 0,
            current_counts: vec![0; partitions],
            bucket_critical: vec![0; buckets],
            bucket_totals: vec![0; buckets],
            partition_totals: vec![0; partitions],
            coarse_trace: vec![vec![0; partitions]; buckets],
            windows_executed: 0,
        }
    }

    /// Record one event of partition `p` in window `w`. Windows must be
    /// non-decreasing (guaranteed by time-ordered execution).
    pub(crate) fn record(&mut self, w: usize, p: usize) {
        debug_assert!(w >= self.current_window, "windows must advance");
        if w != self.current_window {
            self.flush_current();
            // Direct jump: the skipped windows are empty and contribute
            // nothing to any aggregate.
            self.current_window = w;
        }
        self.current_counts[p] += 1;
        self.current_total += 1;
        self.partition_totals[p] += 1;
        if let Some(bucket) = self.coarse_trace.get_mut(w / self.windows_per_bucket) {
            bucket[p] += 1;
        }
    }

    fn flush_current(&mut self) {
        if self.current_total == 0 {
            return;
        }
        let max = self.current_counts.iter().copied().max().unwrap_or(0);
        let b = self.current_window / self.windows_per_bucket;
        if let Some(slot) = self.bucket_critical.get_mut(b) {
            *slot += max;
        }
        if let Some(slot) = self.bucket_totals.get_mut(b) {
            *slot += self.current_total;
        }
        self.windows_executed += 1;
        self.current_total = 0;
        for c in self.current_counts.iter_mut() {
            *c = 0;
        }
    }

    /// Finish: flush the final window and write into `stats`.
    pub(crate) fn finish(mut self, window: SimTime, stats: &mut ExecutionStats) {
        self.flush_current();
        stats.window = window;
        stats.n_windows = self.n_windows;
        stats.bucket_critical = self.bucket_critical;
        stats.bucket_totals = self.bucket_totals;
        stats.partition_totals = self.partition_totals;
        stats.coarse_trace = self.coarse_trace;
        stats.windows_per_bucket = self.windows_per_bucket;
        stats.windows_executed = self.windows_executed;
        stats.windows_skipped = self.n_windows as u64 - self.windows_executed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_max_total_and_totals() {
        let mut acc = WindowAccumulator::new(3, 4);
        // window 0: p0×2, p1×1
        acc.record(0, 0);
        acc.record(0, 0);
        acc.record(0, 1);
        // window 2 (window 1 empty): p2×3
        acc.record(2, 2);
        acc.record(2, 2);
        acc.record(2, 2);
        let mut stats = ExecutionStats::new(0);
        acc.finish(SimTime::from_ms(1), &mut stats);
        // 4 windows, 1 window per bucket: buckets mirror windows here.
        assert_eq!(stats.bucket_critical, vec![2, 0, 3, 0]);
        assert_eq!(stats.bucket_totals, vec![3, 0, 3, 0]);
        assert_eq!(stats.partition_totals, vec![2, 1, 3]);
        assert_eq!(stats.critical_path_events(), 5);
        assert_eq!(stats.window_count(), 4);
        assert_eq!(stats.windows_executed, 2);
        assert_eq!(stats.windows_skipped, 2);
    }

    #[test]
    fn coarse_trace_buckets_many_windows() {
        let n_windows = TRACE_BUCKETS * 3;
        let mut acc = WindowAccumulator::new(2, n_windows);
        for w in 0..n_windows {
            acc.record(w, w % 2);
        }
        let mut stats = ExecutionStats::new(0);
        acc.finish(SimTime::from_ms(1), &mut stats);
        assert_eq!(stats.windows_per_bucket, 3);
        assert_eq!(stats.coarse_trace.len(), TRACE_BUCKETS);
        let bucket_sum: u64 = stats.coarse_trace.iter().flatten().sum();
        assert_eq!(bucket_sum, n_windows as u64);
        assert_eq!(stats.bucket_critical.len(), TRACE_BUCKETS);
        assert_eq!(stats.bucket_totals.len(), TRACE_BUCKETS);
        assert_eq!(stats.critical_path_events(), n_windows as u64);
        assert_eq!(stats.windows_executed, n_windows as u64);
        assert_eq!(stats.windows_skipped, 0);
    }

    #[test]
    fn accumulator_jumps_long_empty_stretches_in_o1() {
        // A horizon of 100 million windows with three events: memory and
        // time must both stay bucket-bounded (the pre-overhaul
        // accumulator walked every window).
        let n_windows = 100_000_000;
        let mut acc = WindowAccumulator::new(2, n_windows);
        acc.record(0, 0);
        acc.record(57_000_000, 1);
        acc.record(99_999_999, 0);
        let mut stats = ExecutionStats::new(0);
        acc.finish(SimTime::from_us(1), &mut stats);
        assert!(stats.bucket_critical.len() <= TRACE_BUCKETS);
        assert!(stats.bucket_totals.len() <= TRACE_BUCKETS);
        assert_eq!(stats.critical_path_events(), 3);
        assert_eq!(stats.windows_executed, 3);
        assert_eq!(stats.windows_skipped, n_windows as u64 - 3);
        assert_eq!(stats.partition_totals, vec![2, 1]);
    }

    #[test]
    fn rates_divide_by_virtual_seconds() {
        let mut s = ExecutionStats::new(0);
        s.partition_totals = vec![10, 30];
        s.end_time = SimTime::from_secs(2);
        assert_eq!(s.partition_event_rates(), vec![5.0, 15.0]);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = ExecutionStats::new(3);
        assert!(s.partition_totals.is_empty());
        assert!(s.partition_event_rates().is_empty());
        assert_eq!(s.window_count(), 0);
        assert_eq!(s.critical_path_events(), 0);
        assert_eq!(s.total_barrier_wait_us(), 0.0);
        assert_eq!(s.imbalance_permille(), 1000);
    }

    #[test]
    fn imbalance_permille_measures_max_over_mean() {
        assert_eq!(imbalance_permille(&[]), 1000);
        assert_eq!(imbalance_permille(&[0, 0, 0]), 1000);
        assert_eq!(imbalance_permille(&[7, 7, 7, 7]), 1000);
        // All load on one of four parts: max/mean = 4.
        assert_eq!(imbalance_permille(&[100, 0, 0, 0]), 4000);
        // 60/20/20: max/mean = 60/33.33 = 1.8.
        assert_eq!(imbalance_permille(&[60, 20, 20]), 1800);
        // Truncation, never rounding up: 2/1 over k=2 → 1333.
        assert_eq!(imbalance_permille(&[2, 1]), 1333);
        // u64-scale loads must not overflow the intermediate product.
        assert_eq!(imbalance_permille(&[u64::MAX / 2, u64::MAX / 2]), 1000);
    }

    #[test]
    fn imbalance_permille_reads_partition_totals() {
        let mut s = ExecutionStats::new(0);
        s.partition_totals = vec![30, 10];
        assert_eq!(s.imbalance_permille(), 1500);
    }
}
