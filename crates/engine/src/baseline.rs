//! The pre-overhaul parallel executor, preserved as the A/B baseline
//! for the `engine_hotpath` bench.
//!
//! [`run_parallel_locked`] is the executor this crate shipped before the
//! hot-path overhaul ([`crate::par`]): it acquires a destination-inbox
//! `Mutex` for **every** cross-partition event, executes a barrier pair
//! for **every** fixed window — including empty ones — and counts events
//! into a per-thread `vec![0u64; n_windows]`, making its memory
//! `O(end_time / window)` per partition. It produces results
//! bit-identical to [`crate::run_parallel`] and [`crate::run_sequential`]
//! (same event order, same merged statistics), differing only in
//! [`crate::ExecutionStats::barrier_rounds`] — which is exactly the cost
//! the overhaul removes and the bench measures.
//!
//! Do not use this outside benchmarks: on sparse schedules it burns a
//! barrier pair per empty window, and on tiny-window/long-horizon runs
//! its per-thread window arrays are the allocation blowup the streaming
//! accumulator was built to avoid.

use crate::event::{EventRecord, LpId, Reverse};
use crate::model::{seed_events, Emitter, Model};
use crate::stats::{bucket_layout, ExecutionStats};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Pre-overhaul executor: mutex-per-event inboxes, a barrier pair per
/// window, per-thread `O(n_windows)` counting. Bit-identical results to
/// [`crate::run_parallel`]; only the synchronization cost differs.
///
/// # Panics
/// Panics if `window` is zero, or if a model emits a cross-partition
/// event with delay smaller than the window (a lookahead violation).
pub fn run_parallel_locked<M: Model>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
) -> (Vec<M>, ExecutionStats) {
    assert!(window > SimTime::ZERO, "window must be positive");
    assert_eq!(assignment.len(), lp_count);
    let partitions = shards.len();
    assert!(partitions >= 1);
    assert!(
        assignment.iter().all(|&p| (p as usize) < partitions),
        "assignment references missing partition"
    );

    let n_windows = end_time.as_ns().div_ceil(window.as_ns()) as usize;

    let mut initial_per_part: Vec<Vec<EventRecord<M::Event>>> =
        (0..partitions).map(|_| Vec::new()).collect();
    for ev in seed_events(initial) {
        let p = assignment[ev.target.index()] as usize;
        initial_per_part[p].push(ev);
    }

    let inboxes: Vec<Mutex<Vec<EventRecord<M::Event>>>> =
        (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(partitions);
    let poison = AtomicBool::new(false);

    struct ThreadResult<M> {
        shard: M,
        lp_events: Vec<u64>,
        window_events: Vec<u64>, // this partition's count per window
        total: u64,
    }

    let results: Vec<ThreadResult<M>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(partitions);
        for (p, (shard, init)) in shards.into_iter().zip(initial_per_part).enumerate() {
            let inboxes = &inboxes;
            let barrier = &barrier;
            let poison = &poison;
            handles.push(scope.spawn(move || {
                let mut shard = shard;
                let mut heap: BinaryHeap<Reverse<M::Event>> =
                    init.into_iter().map(Reverse).collect();
                let mut counters = vec![0u32; lp_count];
                let mut out_buf: Vec<EventRecord<M::Event>> = Vec::new();
                let mut lp_events = vec![0u64; lp_count];
                let mut window_events = vec![0u64; n_windows];
                let mut total = 0u64;

                #[allow(clippy::needless_range_loop)] // w drives both the
                // window-end arithmetic and the per-window counter slot
                for w in 0..n_windows {
                    let window_end = (window * (w as u64 + 1)).min(end_time);
                    while let Some(Reverse(head)) = heap.peek() {
                        if head.time >= window_end {
                            break;
                        }
                        let Reverse(ev) = heap.pop().expect("peeked");
                        let lp = ev.target;
                        debug_assert_eq!(assignment[lp.index()] as usize, p);
                        {
                            let mut emitter = Emitter::new(
                                ev.time,
                                lp.0,
                                &mut counters[lp.index()],
                                &mut out_buf,
                            );
                            shard.handle(lp, ev.time, ev.payload, &mut emitter);
                        }
                        lp_events[lp.index()] += 1;
                        window_events[w] += 1;
                        total += 1;
                        for new_ev in out_buf.drain(..) {
                            debug_assert!(new_ev.time >= ev.time);
                            let dest = assignment[new_ev.target.index()] as usize;
                            if dest == p {
                                heap.push(Reverse(new_ev));
                            } else {
                                if new_ev.time < window_end {
                                    poison.store(true, Ordering::Relaxed);
                                }
                                // The per-event lock the overhaul removed.
                                inboxes[dest].lock().push(new_ev);
                            }
                        }
                    }
                    barrier.wait();
                    if poison.load(Ordering::Relaxed) {
                        break;
                    }
                    for ev in inboxes[p].lock().drain(..) {
                        heap.push(Reverse(ev));
                    }
                    barrier.wait();
                }
                ThreadResult {
                    shard,
                    lp_events,
                    window_events,
                    total,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    });
    assert!(
        !poison.load(Ordering::Relaxed),
        "lookahead violation: a cross-partition event was scheduled inside \
         the current window (window exceeds the partition's MLL?)"
    );

    // Merge into the bucketed stats representation so baseline and
    // overhauled runs are field-for-field comparable; only
    // `barrier_rounds` legitimately differs.
    let mut stats = ExecutionStats::new(lp_count);
    stats.window = window;
    stats.end_time = end_time;
    stats.n_windows = n_windows;
    let (windows_per_bucket, buckets) = bucket_layout(n_windows);
    stats.windows_per_bucket = windows_per_bucket;
    stats.bucket_critical = vec![0; buckets];
    stats.bucket_totals = vec![0; buckets];
    stats.partition_totals = vec![0; partitions];
    stats.coarse_trace = vec![vec![0; partitions]; buckets];
    // This executor synchronizes every window whether or not it holds
    // events; `windows_executed`/`windows_skipped` keep their portable
    // meaning (non-empty vs empty windows) so they match the overhauled
    // executor bit-for-bit, and `barrier_rounds` carries the cost.
    stats.barrier_rounds = 2 * n_windows as u64;
    let mut shards_out = Vec::with_capacity(partitions);
    let mut per_window: Vec<&[u64]> = Vec::with_capacity(partitions);
    for (p, r) in results.iter().enumerate() {
        for (dst, src) in stats.lp_events.iter_mut().zip(&r.lp_events) {
            *dst += src;
        }
        stats.total_events += r.total;
        stats.partition_totals[p] = r.window_events.iter().sum();
        per_window.push(&r.window_events);
    }
    for w in 0..n_windows {
        let b = w / windows_per_bucket;
        let mut win_total = 0u64;
        let mut win_max = 0u64;
        for (p, counts) in per_window.iter().enumerate() {
            let c = counts[w];
            win_total += c;
            win_max = win_max.max(c);
            stats.coarse_trace[b][p] += c;
        }
        if win_total > 0 {
            stats.bucket_critical[b] += win_max;
            stats.bucket_totals[b] += win_total;
            stats.windows_executed += 1;
        }
    }
    stats.windows_skipped = n_windows as u64 - stats.windows_executed;
    drop(per_window);
    for r in results {
        shards_out.push(r.shard);
    }
    (shards_out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token ring identical to the one in `par::tests`.
    struct RingShard {
        n: u32,
        hop: SimTime,
        visits: Vec<(u32, u64)>,
    }

    impl Model for RingShard {
        type Event = u8;
        fn handle(&mut self, target: LpId, now: SimTime, _ev: u8, out: &mut Emitter<'_, u8>) {
            self.visits.push((target.0, now.as_ns()));
            out.emit(self.hop, LpId((target.0 + 1) % self.n), 0);
        }
    }

    fn ring_shards(n: u32, parts: usize, hop: SimTime) -> Vec<RingShard> {
        (0..parts)
            .map(|_| RingShard {
                n,
                hop,
                visits: vec![],
            })
            .collect()
    }

    #[test]
    fn baseline_matches_overhauled_executor_bit_for_bit() {
        let n = 6u32;
        let hop = SimTime::from_ms(2);
        let end = SimTime::from_ms(50);
        let assignment = [0u32, 0, 1, 1, 2, 2];
        let init = vec![(SimTime::ZERO, LpId(0), 0u8)];

        let (old_shards, old) = run_parallel_locked(
            ring_shards(n, 3, hop),
            n as usize,
            &assignment,
            init.clone(),
            end,
            hop,
        );
        let (new_shards, new) = crate::run_parallel(
            ring_shards(n, 3, hop),
            n as usize,
            &assignment,
            init,
            end,
            hop,
        );

        let old_visits: Vec<_> = old_shards.into_iter().map(|s| s.visits).collect();
        let new_visits: Vec<_> = new_shards.into_iter().map(|s| s.visits).collect();
        assert_eq!(old_visits, new_visits);
        assert_eq!(old.lp_events, new.lp_events);
        assert_eq!(old.total_events, new.total_events);
        assert_eq!(old.bucket_critical, new.bucket_critical);
        assert_eq!(old.bucket_totals, new.bucket_totals);
        assert_eq!(old.partition_totals, new.partition_totals);
        assert_eq!(old.coarse_trace, new.coarse_trace);
        assert_eq!(old.windows_executed, new.windows_executed);
        assert_eq!(old.windows_skipped, new.windows_skipped);
        // The one legitimate difference: a dense ring executes every
        // window, so here the counts are close — the baseline pays two
        // barriers per window, the overhaul one initial rendezvous plus
        // two per executed window.
        assert_eq!(old.barrier_rounds, 2 * old.window_count() as u64);
        assert_eq!(new.barrier_rounds, 1 + 2 * new.windows_executed);
    }

    #[test]
    fn baseline_pays_barriers_for_empty_windows() {
        // One event at t=0, then silence for the rest of a 1000-window
        // horizon: the baseline still runs 2000 barrier rounds.
        struct OneShot;
        impl Model for OneShot {
            type Event = ();
            fn handle(&mut self, _: LpId, _: SimTime, _: (), _: &mut Emitter<'_, ()>) {}
        }
        let (_, stats) = run_parallel_locked(
            vec![OneShot, OneShot],
            2,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), ())],
            SimTime::from_secs(1),
            SimTime::from_ms(1),
        );
        assert_eq!(stats.total_events, 1);
        assert_eq!(stats.windows_executed, 1);
        assert_eq!(stats.windows_skipped, 999);
        assert_eq!(stats.barrier_rounds, 2000);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn baseline_still_detects_lookahead_violations() {
        let n = 2u32;
        let hop = SimTime::from_ms(1);
        run_parallel_locked(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            SimTime::from_ms(2),
        );
    }
}
