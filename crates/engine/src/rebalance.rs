//! Online re-partitioning decision layer: deterministic load signals,
//! epoch geometry, and the imbalance trigger.
//!
//! The paper's HPROF mapping is computed once, up front; fault epochs,
//! TCP backoff storms, and bursty workloads skew per-partition load
//! over time. This module holds everything the *engine* contributes to
//! fixing that online:
//!
//! * [`RebalanceConfig`] — epoch cadence, imbalance threshold, and the
//!   per-epoch migration budget.
//! * [`partition_loads`] / [`should_rebalance`] — fold per-LP event
//!   counts (a deterministic function of simulated state) into
//!   per-partition loads and test them against the threshold using the
//!   integer-only [`crate::stats::imbalance_permille`] metric.
//! * [`RebalanceCounters`] — what happened, for reporting and
//!   checkpointing.
//!
//! **Determinism contract.** Decisions are a pure function of simulated
//! state: the load signal is `ExecutionStats::lp_events` /
//! `partition_totals` (events executed — one per packet/fluid update,
//! identical on every host and thread count), never
//! `ExecutionStats::barrier_wait_us`, which is *measured wall clock*
//! and differs run to run. simlint's D5 determinism-taint rule flags
//! barrier-wait reads that flow into sim inputs precisely so a future
//! rebalancer tweak cannot regress this. Epoch boundaries are absolute
//! multiples of `epoch` from virtual time zero, so a run segmented by
//! checkpoints replays the same decision sequence as a straight-through
//! run.
//!
//! The actual move search lives in `massf-partition`
//! (`rebalance::rebalance`, RNG-free integer-only local moves) and the
//! migration transport in the snapshot session layer (owner-filtered
//! world export, merge, re-restore under the new assignment, with the
//! [`crate::ResumeState`] frontier handed to the new owners); this
//! module stays model-agnostic.

use crate::stats::imbalance_permille;
use crate::time::SimTime;
use massf_topology::MassfError;

/// Configuration of the online rebalancer's decision function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Epoch cadence: imbalance is evaluated whenever virtual time
    /// crosses a multiple of `epoch` (absolute from t = 0, so decision
    /// points are independent of how the run is segmented).
    pub epoch: SimTime,
    /// Trigger threshold on [`imbalance_permille`] of the last epoch's
    /// per-partition loads; `1000` = perfectly balanced. A rebalance is
    /// attempted when the measured value *exceeds* this.
    pub threshold_permille: u64,
    /// Maximum LP migrations per triggered rebalance (bounds the
    /// export/restore work paid at one epoch boundary).
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            epoch: SimTime::from_ms(500),
            threshold_permille: 1200,
            max_moves: 64,
        }
    }
}

impl RebalanceConfig {
    /// Structural validation; configs may arrive from CLI flags or
    /// snapshot files.
    pub fn validate(&self) -> Result<(), MassfError> {
        if self.epoch <= SimTime::ZERO {
            return Err(MassfError::InvalidConfig(
                "rebalance epoch must be positive".into(),
            ));
        }
        if self.threshold_permille < 1000 {
            return Err(MassfError::InvalidConfig(format!(
                "rebalance threshold {} permille is below 1000 (perfect balance); \
                 the trigger would fire on every epoch",
                self.threshold_permille
            )));
        }
        if self.max_moves == 0 {
            return Err(MassfError::InvalidConfig(
                "rebalance max_moves must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// First epoch boundary strictly after `now` (absolute multiples of
    /// `epoch` from virtual time zero).
    pub fn next_boundary(&self, now: SimTime) -> SimTime {
        let e = self.epoch.as_ns();
        SimTime::from_ns((now.as_ns() / e + 1) * e)
    }
}

/// Fold per-LP loads into per-partition loads under `assignment`.
pub fn partition_loads(lp_loads: &[u64], assignment: &[u32], partitions: usize) -> Vec<u64> {
    assert_eq!(lp_loads.len(), assignment.len(), "load/assignment length");
    let mut loads = vec![0u64; partitions];
    for (&l, &p) in lp_loads.iter().zip(assignment) {
        loads[p as usize] += l;
    }
    loads
}

/// The trigger: does the measured per-partition load of the last epoch
/// exceed the configured imbalance threshold?
pub fn should_rebalance(cfg: &RebalanceConfig, epoch_partition_loads: &[u64]) -> bool {
    imbalance_permille(epoch_partition_loads) > cfg.threshold_permille
}

/// Cumulative rebalancer activity, carried in checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceCounters {
    /// Epoch boundaries evaluated.
    pub epochs: u64,
    /// Boundaries where the trigger fired *and* the move search found
    /// improving moves (i.e. an actual migration round happened).
    pub rebalances: u64,
    /// Total LPs migrated across all rebalances.
    pub migrations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(RebalanceConfig::default().validate().is_ok());
        let bad = RebalanceConfig {
            epoch: SimTime::ZERO,
            ..RebalanceConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RebalanceConfig {
            threshold_permille: 999,
            ..RebalanceConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = RebalanceConfig {
            max_moves: 0,
            ..RebalanceConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn boundaries_are_absolute_multiples() {
        let cfg = RebalanceConfig {
            epoch: SimTime::from_ms(100),
            ..RebalanceConfig::default()
        };
        assert_eq!(cfg.next_boundary(SimTime::ZERO), SimTime::from_ms(100));
        assert_eq!(
            cfg.next_boundary(SimTime::from_ms(99)),
            SimTime::from_ms(100)
        );
        // Sitting exactly on a boundary advances to the next one, so a
        // driver paused at a boundary never re-evaluates the same epoch.
        assert_eq!(
            cfg.next_boundary(SimTime::from_ms(100)),
            SimTime::from_ms(200)
        );
        assert_eq!(
            cfg.next_boundary(SimTime::from_ms(250)),
            SimTime::from_ms(300)
        );
    }

    #[test]
    fn loads_fold_by_assignment() {
        let loads = partition_loads(&[5, 1, 2, 10], &[0, 1, 1, 0], 3);
        assert_eq!(loads, vec![15, 3, 0]);
    }

    #[test]
    fn trigger_compares_strictly() {
        let cfg = RebalanceConfig {
            threshold_permille: 1500,
            ..RebalanceConfig::default()
        };
        assert!(!should_rebalance(&cfg, &[30, 10])); // exactly 1500
        assert!(should_rebalance(&cfg, &[31, 10]));
        assert!(!should_rebalance(&cfg, &[0, 0])); // nothing to balance
        assert!(!should_rebalance(&cfg, &[]));
    }
}
