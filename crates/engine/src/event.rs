//! Events and their deterministic total order.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Identifier of a logical process (LP). In the network simulation every
/// router and host is one LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LpId(pub u32);

impl LpId {
    /// Index into per-LP arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Source LP id used for events injected from outside the simulation
/// (initial events); participates in tag construction only. Public so
/// resume/branch layers can keep tagging externally injected suffix
/// events in the same tag space.
pub const EXTERNAL_SOURCE: u32 = u32::MAX;

/// Build the deterministic tie-break tag from `(source LP, counter)`.
#[inline]
pub(crate) fn make_tag(source: u32, counter: u32) -> u64 {
    ((source as u64) << 32) | counter as u64
}

/// The tie-break tag of the `position`-th externally injected event
/// (what [`crate::model::seed_events`] assigns in injection order).
#[inline]
pub fn external_tag(position: u32) -> u64 {
    make_tag(EXTERNAL_SOURCE, position)
}

/// The `(source LP, per-source counter)` halves of a tag.
#[inline]
pub(crate) fn split_tag(tag: u64) -> (u32, u32) {
    // simlint: allow(cast-lossy) -- both casts keep exactly the half they select
    ((tag >> 32) as u32, (tag & 0xFFFF_FFFF) as u32)
}

/// A scheduled event.
///
/// `tag` is unique per run and identical between sequential and parallel
/// execution, so `(time, tag)` is a deterministic total order on events.
#[derive(Debug, Clone)]
pub struct EventRecord<M> {
    pub time: SimTime,
    pub target: LpId,
    pub tag: u64,
    pub payload: M,
}

impl<M> PartialEq for EventRecord<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tag == other.tag
    }
}
impl<M> Eq for EventRecord<M> {}

impl<M> PartialOrd for EventRecord<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for EventRecord<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.tag.cmp(&other.tag))
    }
}

/// `BinaryHeap` is a max-heap; wrap for min-order.
#[derive(Debug, Clone)]
pub(crate) struct Reverse<M>(pub EventRecord<M>);

impl<M> PartialEq for Reverse<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<M> Eq for Reverse<M> {}
impl<M> PartialOrd for Reverse<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Reverse<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, tag: u64) -> EventRecord<()> {
        EventRecord {
            time: SimTime::from_ns(t),
            target: LpId(0),
            tag,
            payload: (),
        }
    }

    #[test]
    fn order_is_time_then_tag() {
        assert!(ev(1, 9) < ev(2, 0));
        assert!(ev(1, 1) < ev(1, 2));
        assert_eq!(ev(1, 1), ev(1, 1));
    }

    #[test]
    fn heap_pops_in_order() {
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        for (t, g) in [(5u64, 0u64), (1, 2), (1, 1), (3, 0)] {
            heap.push(Reverse(ev(t, g)));
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.time.as_ns(), e.tag))
            .collect();
        assert_eq!(order, vec![(1, 1), (1, 2), (3, 0), (5, 0)]);
    }

    #[test]
    fn tags_pack_source_and_counter() {
        let t = make_tag(7, 3);
        assert_eq!(t >> 32, 7);
        assert_eq!(t & 0xFFFF_FFFF, 3);
        assert!(make_tag(1, u32::MAX) < make_tag(2, 0));
    }
}
