//! The multi-threaded barrier-windowed conservative executor.
//!
//! One OS thread per partition, exactly like MaSSF runs one MPI process
//! per cluster node. Virtual time advances in fixed windows no longer
//! than the minimum cross-partition link latency (MLL): within a window
//! each partition processes its local events independently; events bound
//! for other partitions are buffered and exchanged at the global barrier
//! that ends the window. Conservative correctness requires every
//! cross-partition event to arrive in a *later* window, which holds by
//! construction when `window ≤ MLL`; the executor checks it and returns
//! [`MassfError::LookaheadViolation`] otherwise.
//!
//! # Hot-path design
//!
//! The per-event path acquires **no locks**. Cross-partition events go
//! into a `partitions × partitions` mailbox matrix: during a window,
//! partition *p* appends to its private row of per-destination buffers
//! (plain `Vec` pushes). At the window-end barrier each sender swaps its
//! non-empty buffers into per-pair exchange slots — one uncontended
//! mutex acquisition per *pair per window*, never per event — and each
//! receiver drains its column in fixed sender-index order. The swap
//! ping-pongs the two buffers of every pair, so allocations are recycled
//! across windows. (The mutex is only a `mem::swap` rendezvous; by the
//! barrier protocol the sender and receiver never touch a slot
//! concurrently. `parking_lot`'s uncontended lock is a single CAS.)
//!
//! Determinism does not depend on drain order — heaps order events by
//! `(time, tag)` — but the fixed order makes the execution schedule
//! itself reproducible.
//!
//! **Empty-window fast-forward**: after the exchange, every partition
//! publishes its next local event time into a per-partition slot; all
//! partitions then compute the same global minimum and jump virtual time
//! directly to the window containing that event. This is conservatively
//! exact: at the barrier *all* in-flight events have been exchanged, so
//! the global minimum over partition heaps is the true next event time
//! of the whole simulation, and every window before it is empty. Long
//! idle stretches (fault epochs, TCP RTO backoff) collapse from
//! thousands of barrier pairs to one. Relaxed atomics suffice for the
//! published times because `Barrier::wait` establishes happens-before
//! between everything written before the barrier and everything read
//! after it.
//!
//! Statistics are streamed into `TRACE_BUCKETS`-bounded arrays by
//! partition 0 between the two barriers of each executed window (see
//! [`crate::stats`]); nothing is sized `O(end_time / window)`.
//!
//! The pre-overhaul executor (mutex per cross-partition event, a
//! barrier pair for every window) is preserved in [`crate::baseline`]
//! as the A/B comparison target for the `engine_hotpath` bench.

use crate::arena::{EventArena, QueuedEvent};
use crate::event::{EventRecord, LpId};
use crate::model::{seed_events, Emitter, Model};
use crate::resume::ResumeState;
use crate::stats::{bucket_layout, ExecutionStats};
use crate::time::SimTime;
use massf_topology::MassfError;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Hook for measuring wall-clock barrier-wait time from *outside* the
/// engine. The engine itself never reads host clocks (the simlint
/// wall-clock gate); the bench crate implements this trait with
/// `Instant`-based timing and passes it into
/// [`try_run_parallel_observed`]. The observer is invoked around every
/// `Barrier::wait` — outside the deterministic event path, so it cannot
/// affect simulation results.
pub trait BarrierObserver: Sync {
    /// Called by partition `p`'s thread immediately before it blocks on
    /// a barrier.
    fn wait_begin(&self, _partition: usize) {}
    /// Called immediately after the barrier releases the thread.
    fn wait_end(&self, _partition: usize) {}
    /// Total measured wait per partition, microseconds. Collected into
    /// [`ExecutionStats::barrier_wait_us`] after the run.
    fn waits_us(&self) -> Vec<f64> {
        Vec::new()
    }
}

/// The default observer: no measurement, zero overhead.
pub struct NoopBarrierObserver;

impl BarrierObserver for NoopBarrierObserver {}

/// Sentinel for "my heap is empty" in the published next-event times.
const IDLE: u64 = u64::MAX;

/// Windowed aggregates reduced by partition 0; everything is bounded by
/// `TRACE_BUCKETS`, never by the window count.
struct WindowStats {
    bucket_critical: Vec<u64>,
    bucket_totals: Vec<u64>,
    partition_totals: Vec<u64>,
    coarse_trace: Vec<Vec<u64>>,
    windows_per_bucket: usize,
    windows_executed: u64,
    barrier_rounds: u64,
}

struct ThreadResult<M: Model> {
    shard: M,
    lp_events: Vec<u64>,
    total: u64,
    /// Earliest cross-partition event time (ns) this partition emitted
    /// inside the current window, if any — a lookahead violation.
    violation: Option<u64>,
    /// `Some` only for partition 0, which performs the reduction.
    windowed: Option<WindowStats>,
    /// This partition's drained frontier (empty unless the caller asked
    /// for a resume state), sorted by `(time, tag)`.
    pending: Vec<EventRecord<M::Event>>,
    /// Per-LP emission counters at exit (only this partition's LPs ever
    /// advanced beyond their restored values).
    counters: Vec<u32>,
    /// Arena misuse surfaced through the fallible path (`try_take`),
    /// reported as a structured error instead of a cross-thread panic.
    error: Option<MassfError>,
}

/// Run `shards[p]` as partition `p`, one thread each, until `end_time`.
///
/// `assignment[lp]` gives each LP's partition; events for LP `l` are
/// handled by shard `assignment[l]`. Handlers must only touch state of
/// their target LP (see [`Model`]); under that contract the result is
/// bit-identical to [`crate::run_sequential`] with an equivalent
/// combined model.
///
/// Returns the shards (with their final state) and merged statistics,
/// or [`MassfError::LookaheadViolation`] if a model emitted a
/// cross-partition event with delay smaller than the window. On
/// violation all partition threads shut down together at the next
/// barrier and the error reports the earliest offending event.
///
/// # Panics
/// Panics if `window` is zero or the assignment is inconsistent with
/// `lp_count` / the shard count (caller bugs, not runtime conditions).
pub fn try_run_parallel<M: Model>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
) -> Result<(Vec<M>, ExecutionStats), MassfError> {
    try_run_parallel_observed(
        shards,
        lp_count,
        assignment,
        initial,
        end_time,
        window,
        &NoopBarrierObserver,
    )
}

/// [`try_run_parallel`] with a [`BarrierObserver`] wrapped around every
/// barrier wait, for wall-clock sync-cost measurement from the bench
/// layer. `observer.waits_us()` lands in
/// [`ExecutionStats::barrier_wait_us`].
#[allow(clippy::too_many_arguments)] // mirrors try_run_parallel + the observer
pub fn try_run_parallel_observed<M: Model, O: BarrierObserver>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
    observer: &O,
) -> Result<(Vec<M>, ExecutionStats), MassfError> {
    let pending = seed_events(initial);
    let counters = vec![0u32; lp_count];
    let (shards, stats, _) = run_parallel_core(
        shards, lp_count, assignment, pending, counters, end_time, window, observer, false,
    )?;
    Ok((shards, stats))
}

/// Continue a paused run from `resume` until `end_time`, in parallel.
/// Returns the shards, the executed segment's stats, and the new
/// frontier — merged across partitions and sorted by `(time, tag)`, so
/// it is thread-count independent: resuming at 1 or N threads (or
/// chaining any mix of [`crate::seq::run_sequential_resumable`] and
/// this) reproduces the straight-through run bit for bit.
///
/// `resume` is validated first (it may come from a snapshot file);
/// malformed frontiers yield [`MassfError::InvalidConfig`].
///
/// # Panics
/// Panics on the same caller bugs as [`try_run_parallel`] (zero window,
/// inconsistent assignment).
#[allow(clippy::type_complexity)] // (shards, stats, frontier) is the natural segment result
pub fn try_run_parallel_resumable<M: Model>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    resume: ResumeState<M::Event>,
    end_time: SimTime,
    window: SimTime,
) -> Result<(Vec<M>, ExecutionStats, ResumeState<M::Event>), MassfError> {
    try_run_parallel_resumable_observed(
        shards,
        lp_count,
        assignment,
        resume,
        end_time,
        window,
        &NoopBarrierObserver,
    )
}

/// [`try_run_parallel_resumable`] with a [`BarrierObserver`] wrapped
/// around every barrier wait, so segmented drivers (checkpointing
/// sessions, the online rebalancer) keep the same wall-clock sync-cost
/// observability as one-shot [`try_run_parallel_observed`] runs. The
/// observed waits land in [`ExecutionStats::barrier_wait_us`] and are
/// measurement output only — never feed them back into simulation
/// decisions (simlint D5 flags that taint flow).
#[allow(clippy::too_many_arguments, clippy::type_complexity)] // mirrors the resumable facade + observer
pub fn try_run_parallel_resumable_observed<M: Model, O: BarrierObserver>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    resume: ResumeState<M::Event>,
    end_time: SimTime,
    window: SimTime,
    observer: &O,
) -> Result<(Vec<M>, ExecutionStats, ResumeState<M::Event>), MassfError> {
    resume.validate(lp_count)?;
    run_parallel_core(
        shards,
        lp_count,
        assignment,
        resume.events,
        resume.counters,
        end_time,
        window,
        observer,
        true,
    )
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)] // internal core shared by the public facades
fn run_parallel_core<M: Model, O: BarrierObserver>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    pending: Vec<EventRecord<M::Event>>,
    counters_init: Vec<u32>,
    end_time: SimTime,
    window: SimTime,
    observer: &O,
    collect_resume: bool,
) -> Result<(Vec<M>, ExecutionStats, ResumeState<M::Event>), MassfError> {
    assert!(window > SimTime::ZERO, "window must be positive");
    assert_eq!(assignment.len(), lp_count);
    let partitions = shards.len();
    assert!(partitions >= 1);
    assert!(
        assignment.iter().all(|&p| (p as usize) < partitions),
        "assignment references missing partition"
    );

    let n_windows = end_time.as_ns().div_ceil(window.as_ns()) as usize;
    let end_ns = end_time.as_ns();

    // Route pending events to their home partitions.
    let mut initial_per_part: Vec<Vec<EventRecord<M::Event>>> =
        (0..partitions).map(|_| Vec::new()).collect();
    for ev in pending {
        let p = assignment[ev.target.index()] as usize;
        initial_per_part[p].push(ev);
    }

    // The mailbox matrix, row-major: slot p * partitions + q carries
    // events from sender p to receiver q. Each mutex is a swap
    // rendezvous touched once per pair per executed window.
    let exchange: Vec<Mutex<Vec<EventRecord<M::Event>>>> = (0..partitions * partitions)
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    // Per-partition published state, read by everyone after a barrier:
    // the next local event time (fast-forward input) and the event count
    // of the window just executed (stats-reduction input).
    let next_times: Vec<AtomicU64> = (0..partitions).map(|_| AtomicU64::new(IDLE)).collect();
    let win_counts: Vec<AtomicU64> = (0..partitions).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(partitions);
    // A thread must never unilaterally panic between barriers — its
    // peers would block in `Barrier::wait` forever. Lookahead
    // violations instead raise this flag; all threads observe it at the
    // next barrier and shut down together, each reporting its earliest
    // offending event time.
    let poison = AtomicBool::new(false);

    let results: Vec<ThreadResult<M>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(partitions);
        for (p, (shard, init)) in shards.into_iter().zip(initial_per_part).enumerate() {
            let exchange = &exchange;
            let next_times = &next_times;
            let win_counts = &win_counts;
            let barrier = &barrier;
            let poison = &poison;
            let counters_init = &counters_init;
            handles.push(scope.spawn(move || {
                let mut shard = shard;
                // Per-thread payload arena + handle heap: local events
                // never leave this thread, so slot recycling stays
                // thread-private (see `crate::arena`). Cross-partition
                // events travel as full `EventRecord`s through the
                // exchange matrix and enter the *receiver's* arena on
                // drain.
                let mut arena: EventArena<M::Event> = EventArena::new();
                let mut heap: BinaryHeap<Reverse<QueuedEvent>> = init
                    .into_iter()
                    .map(|ev| Reverse(arena.enqueue(ev)))
                    .collect();
                // Restored counters: only this partition's LPs will
                // advance; the merge below takes the elementwise max.
                let mut counters = counters_init.clone();
                let mut out_buf: Vec<EventRecord<M::Event>> = Vec::new();
                let mut error: Option<MassfError> = None;
                // Private per-destination rows; swapped (never moved)
                // into the exchange slots, so capacity is recycled.
                let mut out_rows: Vec<Vec<EventRecord<M::Event>>> =
                    (0..partitions).map(|_| Vec::new()).collect();
                let mut lp_events = vec![0u64; lp_count];
                let mut total = 0u64;
                let mut violation: Option<u64> = None;
                let mut windowed = (p == 0).then(|| {
                    let (windows_per_bucket, buckets) = bucket_layout(n_windows);
                    WindowStats {
                        bucket_critical: vec![0; buckets],
                        bucket_totals: vec![0; buckets],
                        partition_totals: vec![0; partitions],
                        coarse_trace: vec![vec![0; partitions]; buckets],
                        windows_per_bucket,
                        windows_executed: 0,
                        barrier_rounds: 1, // the initial publish barrier
                    }
                });

                // Publish the initial next-event time, then rendezvous so
                // every partition computes the first window from complete
                // information.
                let next = heap.peek().map_or(IDLE, |&Reverse(ev)| ev.time.as_ns());
                next_times[p].store(next, Ordering::Relaxed);
                observer.wait_begin(p);
                barrier.wait();
                observer.wait_end(p);

                loop {
                    // Every partition computes the same global minimum
                    // from the same published values (happens-before via
                    // the barrier), so all take the same branch.
                    let global_min = next_times
                        .iter()
                        .map(|t| t.load(Ordering::Relaxed))
                        .min()
                        .unwrap_or(IDLE);
                    if global_min >= end_ns {
                        break;
                    }
                    // Fast-forward: jump straight to the window holding
                    // the next event anywhere in the simulation.
                    let w = (global_min / window.as_ns()) as usize;
                    let window_end = (window * (w as u64 + 1)).min(end_time);

                    // Process this window's local events.
                    let mut count = 0u64;
                    while let Some(&Reverse(head)) = heap.peek() {
                        if head.time >= window_end {
                            break;
                        }
                        let Reverse(ev) = heap.pop().expect("peeked");
                        // Fallible path: slab misuse becomes a
                        // structured error through the coordinated
                        // poison shutdown, never a cross-thread panic.
                        let payload = match arena.try_take(ev.handle) {
                            Ok(payload) => payload,
                            Err(e) => {
                                error = Some(e);
                                poison.store(true, Ordering::Relaxed);
                                break;
                            }
                        };
                        let lp = ev.target;
                        debug_assert_eq!(assignment[lp.index()] as usize, p);
                        {
                            let mut emitter = Emitter::new(
                                ev.time,
                                lp.0,
                                &mut counters[lp.index()],
                                &mut out_buf,
                            );
                            shard.handle(lp, ev.time, payload, &mut emitter);
                        }
                        lp_events[lp.index()] += 1;
                        count += 1;
                        for new_ev in out_buf.drain(..) {
                            debug_assert!(new_ev.time >= ev.time);
                            let dest = assignment[new_ev.target.index()] as usize;
                            if dest == p {
                                heap.push(Reverse(arena.enqueue(new_ev)));
                            } else {
                                if new_ev.time < window_end {
                                    // Lookahead violation (window exceeds
                                    // the MLL). Record the earliest and
                                    // flag it; everyone aborts together
                                    // at the barrier.
                                    let t = new_ev.time.as_ns();
                                    violation = Some(violation.map_or(t, |prev| prev.min(t)));
                                    poison.store(true, Ordering::Relaxed);
                                }
                                out_rows[dest].push(new_ev);
                            }
                        }
                    }
                    total += count;
                    win_counts[p].store(count, Ordering::Relaxed);
                    // Publish outboxes: swap each non-empty row into its
                    // exchange slot. Uncontended by protocol — receivers
                    // only touch the slot after the barrier.
                    for (dest, row) in out_rows.iter_mut().enumerate() {
                        if !row.is_empty() {
                            std::mem::swap(&mut *exchange[p * partitions + dest].lock(), row);
                        }
                    }
                    // All sends for window `w` complete.
                    observer.wait_begin(p);
                    barrier.wait();
                    observer.wait_end(p);
                    if poison.load(Ordering::Relaxed) {
                        // Coordinated shutdown: every thread sees the
                        // flag after the same barrier and returns, so no
                        // peer is left blocking.
                        break;
                    }
                    // Reduce this window's counts into the bucketed
                    // stats (partition 0 only; peers are draining their
                    // columns meanwhile, which never touches
                    // `win_counts`).
                    if let Some(ws) = windowed.as_mut() {
                        let b = w / ws.windows_per_bucket;
                        let mut win_total = 0u64;
                        let mut win_max = 0u64;
                        for (q, c) in win_counts.iter().enumerate() {
                            let c = c.load(Ordering::Relaxed);
                            win_total += c;
                            win_max = win_max.max(c);
                            ws.partition_totals[q] += c;
                            ws.coarse_trace[b][q] += c;
                        }
                        ws.bucket_critical[b] += win_max;
                        ws.bucket_totals[b] += win_total;
                        // Fast-forward chose `w` because it holds the
                        // globally next event, so the window is never
                        // empty.
                        debug_assert!(win_total > 0, "executed window must hold events");
                        ws.windows_executed += 1;
                        ws.barrier_rounds += 2;
                    }
                    // Drain my column in fixed sender-index order.
                    for q in 0..partitions {
                        if q == p {
                            continue;
                        }
                        let mut slot = exchange[q * partitions + p].lock();
                        for ev in slot.drain(..) {
                            debug_assert!(ev.time >= window_end, "lookahead-safe arrival");
                            heap.push(Reverse(arena.enqueue(ev)));
                        }
                    }
                    // Publish my next local event time for the
                    // fast-forward decision. Every in-flight event has
                    // been exchanged, so the global min over these is
                    // exact — and ≥ window_end, so virtual time strictly
                    // advances.
                    let next = heap.peek().map_or(IDLE, |&Reverse(ev)| ev.time.as_ns());
                    next_times[p].store(next, Ordering::Relaxed);
                    // Nobody may compute the next window (or start
                    // sending into it) until every partition has drained
                    // and published.
                    observer.wait_begin(p);
                    barrier.wait();
                    observer.wait_end(p);
                }
                // At loop exit every in-flight event has been exchanged
                // (the exit check precedes popping, after a barrier), so
                // this heap holds exactly this partition's share of the
                // global frontier. Drain in heap order → sorted output.
                let mut pending = Vec::new();
                if collect_resume && !poison.load(Ordering::Relaxed) {
                    pending.reserve(heap.len());
                    while let Some(Reverse(ev)) = heap.pop() {
                        match arena.try_take(ev.handle) {
                            Ok(payload) => pending.push(EventRecord {
                                time: ev.time,
                                target: ev.target,
                                tag: ev.tag,
                                payload,
                            }),
                            Err(e) => {
                                error = Some(e);
                                break;
                            }
                        }
                    }
                }
                ThreadResult {
                    shard,
                    lp_events,
                    total,
                    violation,
                    windowed,
                    pending,
                    counters,
                    error,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    });

    // Abort path: report the earliest violation across partitions
    // (deterministic — every thread processed the same window set before
    // the coordinated shutdown).
    if let Some((event_time_ns, partition)) = results
        .iter()
        .enumerate()
        .filter_map(|(p, r)| r.violation.map(|t| (t, p)))
        .min()
    {
        let partition = u32::try_from(partition).expect("partition count fits in u32");
        return Err(MassfError::LookaheadViolation {
            partition,
            event_time_ns,
            window_ns: window.as_ns(),
        });
    }

    // Arena misuse reported through the fallible path: surface the
    // lowest-partition error (results are in partition order, so this is
    // deterministic).
    if let Some(e) = results.iter().find_map(|r| r.error.clone()) {
        return Err(e);
    }

    let mut stats = ExecutionStats::new(lp_count);
    stats.window = window;
    stats.end_time = end_time;
    stats.barrier_wait_us = observer.waits_us();
    let mut shards_out = Vec::with_capacity(partitions);
    let mut resume_events: Vec<EventRecord<M::Event>> = Vec::new();
    let mut resume_counters = vec![0u32; if collect_resume { lp_count } else { 0 }];
    for r in results {
        for (dst, src) in stats.lp_events.iter_mut().zip(&r.lp_events) {
            *dst += src;
        }
        stats.total_events += r.total;
        if let Some(ws) = r.windowed {
            stats.n_windows = n_windows;
            stats.bucket_critical = ws.bucket_critical;
            stats.bucket_totals = ws.bucket_totals;
            stats.partition_totals = ws.partition_totals;
            stats.coarse_trace = ws.coarse_trace;
            stats.windows_per_bucket = ws.windows_per_bucket;
            stats.windows_executed = ws.windows_executed;
            stats.windows_skipped = n_windows as u64 - ws.windows_executed;
            stats.barrier_rounds = ws.barrier_rounds;
        }
        if collect_resume {
            resume_events.extend(r.pending);
            // Each LP advances only in its owner partition; everywhere
            // else its counter stays at the restored value, so the
            // elementwise max reconstructs the global counter vector.
            for (dst, src) in resume_counters.iter_mut().zip(&r.counters) {
                *dst = (*dst).max(*src);
            }
        }
        shards_out.push(r.shard);
    }
    // Per-partition drains are each sorted; the merged frontier must be
    // globally sorted by `(time, tag)` to be partition-layout agnostic.
    resume_events.sort_unstable();
    Ok((
        shards_out,
        stats,
        ResumeState {
            events: resume_events,
            counters: resume_counters,
        },
    ))
}

/// Panicking facade over [`try_run_parallel`], for callers that treat a
/// lookahead violation as a caller bug (window chosen above the MLL).
///
/// # Panics
/// Panics if `window` is zero, or with the [`MassfError`] display (a
/// "lookahead violation: …" message) if a model emits a cross-partition
/// event with delay smaller than the window.
pub fn run_parallel<M: Model>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
) -> (Vec<M>, ExecutionStats) {
    match try_run_parallel(shards, lp_count, assignment, initial, end_time, window) {
        Ok(out) => out,
        // Deliberate facade: preserves the pre-overhaul panicking contract
        // for callers that pick the window from the achieved MLL, where a
        // violation is a programming error.
        // simlint: allow(unwrap-audit) -- panicking facade over try_run_parallel
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token ring over n LPs with 1 ms hops; each shard records visits to
    /// its own LPs (handlers touch only target-LP state).
    #[derive(Debug)]
    struct RingShard {
        n: u32,
        hop: SimTime,
        visits: Vec<(u32, u64)>, // (lp, time ns)
    }

    impl Model for RingShard {
        type Event = u8;
        fn handle(&mut self, target: LpId, now: SimTime, _ev: u8, out: &mut Emitter<'_, u8>) {
            self.visits.push((target.0, now.as_ns()));
            out.emit(self.hop, LpId((target.0 + 1) % self.n), 0);
        }
    }

    fn ring_shards(n: u32, parts: usize, hop: SimTime) -> Vec<RingShard> {
        (0..parts)
            .map(|_| RingShard {
                n,
                hop,
                visits: vec![],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_token_ring() {
        let n = 6u32;
        let hop = SimTime::from_ms(2);
        let end = SimTime::from_ms(50);
        let assignment = [0u32, 0, 1, 1, 2, 2];

        // Sequential reference.
        let mut seq_model = RingShard {
            n,
            hop,
            visits: vec![],
        };
        let seq_stats = crate::run_sequential(
            &mut seq_model,
            n as usize,
            vec![(SimTime::ZERO, LpId(0), 0)],
            end,
        );

        // Parallel, window = hop latency (the MLL).
        let (shards, par_stats) = run_parallel(
            ring_shards(n, 3, hop),
            n as usize,
            &assignment,
            vec![(SimTime::ZERO, LpId(0), 0)],
            end,
            hop,
        );

        assert_eq!(seq_stats.total_events, par_stats.total_events);
        assert_eq!(seq_stats.lp_events, par_stats.lp_events);
        // Merge + sort parallel visit logs; must equal sequential order.
        let mut merged: Vec<(u32, u64)> = shards.into_iter().flat_map(|s| s.visits).collect();
        merged.sort_by_key(|&(_, t)| t);
        assert_eq!(merged, seq_model.visits);
    }

    #[test]
    fn resumable_parallel_chains_bit_identically_across_layouts() {
        let n = 6u32;
        let hop = SimTime::from_ms(2);
        let end = SimTime::from_ms(50);

        let mut seq_model = RingShard {
            n,
            hop,
            visits: vec![],
        };
        let seq_stats = crate::run_sequential(
            &mut seq_model,
            n as usize,
            vec![(SimTime::ZERO, LpId(0), 0)],
            end,
        );

        // Segment 1: 3 partitions to 24 ms. Segment 2: resume the merged
        // frontier on 2 partitions with a different assignment — the
        // frontier is layout-agnostic, so the chain must still equal the
        // sequential run bit for bit.
        let start = ResumeState {
            events: seed_events(vec![(SimTime::ZERO, LpId(0), 0)]),
            counters: vec![0; n as usize],
        };
        let (shards1, s1, mid) = try_run_parallel_resumable(
            ring_shards(n, 3, hop),
            n as usize,
            &[0, 0, 1, 1, 2, 2],
            start,
            SimTime::from_ms(24),
            hop,
        )
        .expect("no violation");
        let (shards2, s2, fin) = try_run_parallel_resumable(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1, 0, 1, 0, 1],
            mid,
            end,
            hop,
        )
        .expect("no violation");

        let mut merged: Vec<(u32, u64)> = shards1
            .into_iter()
            .chain(shards2)
            .flat_map(|s| s.visits)
            .collect();
        merged.sort_by_key(|&(_, t)| t);
        assert_eq!(merged, seq_model.visits);
        assert_eq!(s1.total_events + s2.total_events, seq_stats.total_events);
        assert_eq!(fin.events.len(), 1, "the next hop survives in the frontier");
        assert_eq!(
            fin.counters.iter().map(|&c| u64::from(c)).sum::<u64>(),
            seq_stats.total_events,
            "every handled ring event emitted exactly one follow-up"
        );
    }

    #[test]
    fn window_counts_cover_all_events() {
        let n = 4u32;
        let hop = SimTime::from_ms(1);
        let (_, stats) = run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 0, 1, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            hop,
        );
        let counted: u64 = stats.bucket_totals.iter().sum();
        assert_eq!(counted, stats.total_events);
        let by_partition: u64 = stats.partition_totals.iter().sum();
        assert_eq!(by_partition, stats.total_events);
        assert_eq!(stats.window_count(), 10);
        // A dense ring fills every window: nothing skipped, a barrier
        // pair per window plus the initial publish rendezvous.
        assert_eq!(stats.windows_executed, 10);
        assert_eq!(stats.windows_skipped, 0);
        assert_eq!(stats.barrier_rounds, 1 + 2 * 10);
    }

    #[test]
    fn single_partition_parallel_equals_sequential() {
        let n = 5u32;
        let hop = SimTime::from_ms(1);
        let mut seq_model = RingShard {
            n,
            hop,
            visits: vec![],
        };
        crate::run_sequential(
            &mut seq_model,
            n as usize,
            vec![(SimTime::ZERO, LpId(2), 0)],
            SimTime::from_ms(20),
        );
        let (shards, _) = run_parallel(
            ring_shards(n, 1, hop),
            n as usize,
            &[0, 0, 0, 0, 0],
            vec![(SimTime::ZERO, LpId(2), 0)],
            SimTime::from_ms(20),
            SimTime::from_ms(7), // window larger than hop is fine for 1 partition
        );
        assert_eq!(shards[0].visits, seq_model.visits);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lookahead_violation_detected() {
        // Hop of 1 ms but window of 2 ms: cross-partition events land
        // inside the current window.
        let n = 2u32;
        let hop = SimTime::from_ms(1);
        run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            SimTime::from_ms(2),
        );
    }

    #[test]
    fn lookahead_violation_is_structured_and_earliest() {
        let n = 2u32;
        let hop = SimTime::from_ms(1);
        let err = try_run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            SimTime::from_ms(2),
        )
        .expect_err("1 ms hops inside a 2 ms window must violate lookahead");
        // The t=0 event on LP0 (partition 0) emits the first violating
        // cross event, landing at t=1 ms inside window [0, 2) ms.
        assert_eq!(
            err,
            MassfError::LookaheadViolation {
                partition: 0,
                event_time_ns: SimTime::from_ms(1).as_ns(),
                window_ns: SimTime::from_ms(2).as_ns(),
            }
        );
        assert!(err.to_string().starts_with("lookahead violation"));
    }

    #[test]
    fn events_beyond_end_time_not_processed() {
        let n = 2u32;
        let hop = SimTime::from_ms(3);
        let (_, stats) = run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(7),
            hop,
        );
        // Events at t=0,3,6 run; t=9 is beyond end.
        assert_eq!(stats.total_events, 3);
    }

    /// Two LPs ping-pong a token with a long idle gap between bursts:
    /// fast-forward must skip the empty windows (barrier count shrinks)
    /// while the visit log stays bit-identical to sequential.
    struct BurstShard {
        gap: SimTime,
        visits: Vec<(u32, u64)>,
    }

    impl Model for BurstShard {
        type Event = u32; // hops remaining in the current burst
        fn handle(&mut self, target: LpId, now: SimTime, left: u32, out: &mut Emitter<'_, u32>) {
            self.visits.push((target.0, now.as_ns()));
            let next = LpId(1 - target.0);
            if left > 0 {
                out.emit(SimTime::from_ms(1), next, left - 1);
            } else {
                out.emit(self.gap, next, 4); // next burst after the gap
            }
        }
    }

    #[test]
    fn fast_forward_skips_idle_windows_bit_identically() {
        let gap = SimTime::from_ms(200);
        let end = SimTime::from_secs(2);
        let window = SimTime::from_ms(1);
        let init = vec![(SimTime::ZERO, LpId(0), 4u32)];

        let mut seq = BurstShard {
            gap,
            visits: vec![],
        };
        let seq_stats = crate::run_sequential(&mut seq, 2, init.clone(), end);

        let shards = (0..2)
            .map(|_| BurstShard {
                gap,
                visits: vec![],
            })
            .collect();
        let (shards, stats) = run_parallel(shards, 2, &[0, 1], init, end, window);

        let mut merged: Vec<(u32, u64)> = shards.into_iter().flat_map(|s| s.visits).collect();
        merged.sort_by_key(|&(_, t)| t);
        assert_eq!(merged, seq.visits);
        assert_eq!(stats.total_events, seq_stats.total_events);

        // 2000 nominal 1 ms windows, but bursts cover only ~5 ms every
        // ~204 ms: the executor must skip the idle stretches.
        assert_eq!(stats.window_count(), 2000);
        assert!(
            stats.windows_executed < 100,
            "only burst windows execute, got {}",
            stats.windows_executed
        );
        assert_eq!(stats.windows_skipped, 2000 - stats.windows_executed);
        assert_eq!(stats.barrier_rounds, 1 + 2 * stats.windows_executed);
        // ≥5× fewer barriers than the one-pair-per-window baseline.
        assert!(stats.barrier_rounds * 5 < 2 * 2000);
    }

    #[test]
    fn empty_initial_events_fast_forwards_to_exit() {
        let (_, stats) = run_parallel(
            ring_shards(2, 2, SimTime::from_ms(1)),
            2,
            &[0, 1],
            vec![],
            SimTime::from_secs(10),
            SimTime::from_ms(1),
        );
        assert_eq!(stats.total_events, 0);
        assert_eq!(stats.windows_executed, 0);
        assert_eq!(stats.windows_skipped, 10_000);
        assert_eq!(stats.barrier_rounds, 1, "just the initial rendezvous");
    }

    /// The observer hooks fire around every barrier and its measurement
    /// lands in the stats without disturbing results.
    #[test]
    fn observer_hooks_fire_and_surface_in_stats() {
        use std::sync::atomic::AtomicU64 as Counter;
        struct CountingObserver {
            begins: Counter,
            ends: Counter,
        }
        impl BarrierObserver for CountingObserver {
            fn wait_begin(&self, _p: usize) {
                self.begins.fetch_add(1, Ordering::Relaxed);
            }
            fn wait_end(&self, _p: usize) {
                self.ends.fetch_add(1, Ordering::Relaxed);
            }
            fn waits_us(&self) -> Vec<f64> {
                vec![1.25, 2.5]
            }
        }
        let obs = CountingObserver {
            begins: Counter::new(0),
            ends: Counter::new(0),
        };
        let (_, stats) = try_run_parallel_observed(
            ring_shards(4, 2, SimTime::from_ms(1)),
            4,
            &[0, 0, 1, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            SimTime::from_ms(1),
            &obs,
        )
        .expect("no violation");
        let expected = stats.barrier_rounds * 2; // 2 partitions per round
        assert_eq!(obs.begins.load(Ordering::Relaxed), expected);
        assert_eq!(obs.ends.load(Ordering::Relaxed), expected);
        assert_eq!(stats.barrier_wait_us, vec![1.25, 2.5]);
        assert!((stats.total_barrier_wait_us() - 3.75).abs() < 1e-12);
    }
}
