//! The multi-threaded barrier-windowed conservative executor.
//!
//! One OS thread per partition, exactly like MaSSF runs one MPI process
//! per cluster node. Virtual time advances in fixed windows no longer
//! than the minimum cross-partition link latency (MLL): within a window
//! each partition processes its local events independently; events bound
//! for other partitions are buffered and exchanged at the global barrier
//! that ends the window. Conservative correctness requires every
//! cross-partition event to arrive in a *later* window, which holds by
//! construction when `window ≤ MLL`; the executor asserts it.

use crate::event::{EventRecord, LpId, Reverse};
use crate::model::{seed_events, Emitter, Model};
use crate::stats::ExecutionStats;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// Run `shards[p]` as partition `p`, one thread each, until `end_time`.
///
/// `assignment[lp]` gives each LP's partition; events for LP `l` are
/// handled by shard `assignment[l]`. Handlers must only touch state of
/// their target LP (see [`Model`]); under that contract the result is
/// bit-identical to [`crate::run_sequential`] with an equivalent
/// combined model.
///
/// Returns the shards (with their final state) and merged statistics.
///
/// # Panics
/// Panics if `window` is zero, or if a model emits a cross-partition
/// event with delay smaller than the window (a lookahead violation).
pub fn run_parallel<M: Model>(
    shards: Vec<M>,
    lp_count: usize,
    assignment: &[u32],
    initial: Vec<(SimTime, LpId, M::Event)>,
    end_time: SimTime,
    window: SimTime,
) -> (Vec<M>, ExecutionStats) {
    assert!(window > SimTime::ZERO, "window must be positive");
    assert_eq!(assignment.len(), lp_count);
    let partitions = shards.len();
    assert!(partitions >= 1);
    assert!(
        assignment.iter().all(|&p| (p as usize) < partitions),
        "assignment references missing partition"
    );

    let n_windows = end_time.as_ns().div_ceil(window.as_ns()) as usize;

    // Route seeded initial events to their home partitions.
    let mut initial_per_part: Vec<Vec<EventRecord<M::Event>>> =
        (0..partitions).map(|_| Vec::new()).collect();
    for ev in seed_events(initial) {
        let p = assignment[ev.target.index()] as usize;
        initial_per_part[p].push(ev);
    }

    let inboxes: Vec<Mutex<Vec<EventRecord<M::Event>>>> =
        (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(partitions);
    // A thread must never unilaterally panic between barriers — its
    // peers would block in `Barrier::wait` forever. Lookahead
    // violations instead raise this flag; all threads observe it at the
    // next barrier and shut down together, and the parent reports.
    let poison = AtomicBool::new(false);

    struct ThreadResult<M> {
        shard: M,
        lp_events: Vec<u64>,
        window_events: Vec<u64>, // this partition's count per window
        total: u64,
    }

    let results: Vec<ThreadResult<M>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(partitions);
        for (p, (shard, init)) in shards.into_iter().zip(initial_per_part).enumerate() {
            let inboxes = &inboxes;
            let barrier = &barrier;
            let poison = &poison;
            handles.push(scope.spawn(move || {
                let mut shard = shard;
                let mut heap: BinaryHeap<Reverse<M::Event>> =
                    init.into_iter().map(Reverse).collect();
                let mut counters = vec![0u32; lp_count];
                let mut out_buf: Vec<EventRecord<M::Event>> = Vec::new();
                let mut lp_events = vec![0u64; lp_count];
                let mut window_events = vec![0u64; n_windows];
                let mut total = 0u64;

                #[allow(clippy::needless_range_loop)] // w drives both the
                // window-end arithmetic and the per-window counter slot
                for w in 0..n_windows {
                    let window_end = (window * (w as u64 + 1)).min(end_time);
                    // Process this window's local events.
                    while let Some(Reverse(head)) = heap.peek() {
                        if head.time >= window_end {
                            break;
                        }
                        let Reverse(ev) = heap.pop().expect("peeked");
                        let lp = ev.target;
                        debug_assert_eq!(assignment[lp.index()] as usize, p);
                        {
                            let mut emitter = Emitter::new(
                                ev.time,
                                lp.0,
                                &mut counters[lp.index()],
                                &mut out_buf,
                            );
                            shard.handle(lp, ev.time, ev.payload, &mut emitter);
                        }
                        lp_events[lp.index()] += 1;
                        window_events[w] += 1;
                        total += 1;
                        for new_ev in out_buf.drain(..) {
                            debug_assert!(new_ev.time >= ev.time);
                            let dest = assignment[new_ev.target.index()] as usize;
                            if dest == p {
                                heap.push(Reverse(new_ev));
                            } else {
                                if new_ev.time < window_end {
                                    // Lookahead violation (window exceeds
                                    // the MLL). Flag it; everyone aborts
                                    // together at the barrier.
                                    poison.store(true, Ordering::Relaxed);
                                }
                                inboxes[dest].lock().push(new_ev);
                            }
                        }
                    }
                    // All sends for this window complete.
                    barrier.wait();
                    if poison.load(Ordering::Relaxed) {
                        // Coordinated shutdown: every thread sees the
                        // flag after the same barrier and returns, so no
                        // peer is left blocking.
                        break;
                    }
                    for ev in inboxes[p].lock().drain(..) {
                        heap.push(Reverse(ev));
                    }
                    // Nobody may start sending into the next window until
                    // every partition drained its inbox.
                    barrier.wait();
                }
                ThreadResult {
                    shard,
                    lp_events,
                    window_events,
                    total,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread panicked"))
            .collect()
    });
    assert!(
        !poison.load(Ordering::Relaxed),
        "lookahead violation: a cross-partition event was scheduled inside \
         the current window (window exceeds the partition's MLL?)"
    );

    let mut stats = ExecutionStats::new(lp_count);
    stats.window = window;
    stats.end_time = end_time;
    let windows_per_bucket = n_windows.div_ceil(crate::stats::TRACE_BUCKETS).max(1);
    let buckets = n_windows.div_ceil(windows_per_bucket);
    stats.per_window_max = vec![0; n_windows];
    stats.per_window_total = vec![0; n_windows];
    stats.partition_totals = vec![0; partitions];
    stats.coarse_trace = vec![vec![0; partitions]; buckets];
    stats.windows_per_bucket = windows_per_bucket;
    let mut shards_out = Vec::with_capacity(partitions);
    for (p, r) in results.into_iter().enumerate() {
        for (dst, src) in stats.lp_events.iter_mut().zip(&r.lp_events) {
            *dst += src;
        }
        for (w, &c) in r.window_events.iter().enumerate() {
            stats.per_window_max[w] = stats.per_window_max[w].max(c);
            stats.per_window_total[w] += c;
            stats.partition_totals[p] += c;
            stats.coarse_trace[w / windows_per_bucket][p] += c;
        }
        stats.total_events += r.total;
        shards_out.push(r.shard);
    }
    (shards_out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token ring over n LPs with 1 ms hops; each shard records visits to
    /// its own LPs (handlers touch only target-LP state).
    struct RingShard {
        n: u32,
        hop: SimTime,
        visits: Vec<(u32, u64)>, // (lp, time ns)
    }

    impl Model for RingShard {
        type Event = u8;
        fn handle(&mut self, target: LpId, now: SimTime, _ev: u8, out: &mut Emitter<'_, u8>) {
            self.visits.push((target.0, now.as_ns()));
            out.emit(self.hop, LpId((target.0 + 1) % self.n), 0);
        }
    }

    fn ring_shards(n: u32, parts: usize, hop: SimTime) -> Vec<RingShard> {
        (0..parts)
            .map(|_| RingShard {
                n,
                hop,
                visits: vec![],
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_token_ring() {
        let n = 6u32;
        let hop = SimTime::from_ms(2);
        let end = SimTime::from_ms(50);
        let assignment = [0u32, 0, 1, 1, 2, 2];

        // Sequential reference.
        let mut seq_model = RingShard {
            n,
            hop,
            visits: vec![],
        };
        let seq_stats = crate::run_sequential(
            &mut seq_model,
            n as usize,
            vec![(SimTime::ZERO, LpId(0), 0)],
            end,
        );

        // Parallel, window = hop latency (the MLL).
        let (shards, par_stats) = run_parallel(
            ring_shards(n, 3, hop),
            n as usize,
            &assignment,
            vec![(SimTime::ZERO, LpId(0), 0)],
            end,
            hop,
        );

        assert_eq!(seq_stats.total_events, par_stats.total_events);
        assert_eq!(seq_stats.lp_events, par_stats.lp_events);
        // Merge + sort parallel visit logs; must equal sequential order.
        let mut merged: Vec<(u32, u64)> = shards.into_iter().flat_map(|s| s.visits).collect();
        merged.sort_by_key(|&(_, t)| t);
        assert_eq!(merged, seq_model.visits);
    }

    #[test]
    fn window_counts_cover_all_events() {
        let n = 4u32;
        let hop = SimTime::from_ms(1);
        let (_, stats) = run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 0, 1, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            hop,
        );
        let counted: u64 = stats.per_window_total.iter().sum();
        assert_eq!(counted, stats.total_events);
        let by_partition: u64 = stats.partition_totals.iter().sum();
        assert_eq!(by_partition, stats.total_events);
        assert_eq!(stats.window_count(), 10);
    }

    #[test]
    fn single_partition_parallel_equals_sequential() {
        let n = 5u32;
        let hop = SimTime::from_ms(1);
        let mut seq_model = RingShard {
            n,
            hop,
            visits: vec![],
        };
        crate::run_sequential(
            &mut seq_model,
            n as usize,
            vec![(SimTime::ZERO, LpId(2), 0)],
            SimTime::from_ms(20),
        );
        let (shards, _) = run_parallel(
            ring_shards(n, 1, hop),
            n as usize,
            &[0, 0, 0, 0, 0],
            vec![(SimTime::ZERO, LpId(2), 0)],
            SimTime::from_ms(20),
            SimTime::from_ms(7), // window larger than hop is fine for 1 partition
        );
        assert_eq!(shards[0].visits, seq_model.visits);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn lookahead_violation_detected() {
        // Hop of 1 ms but window of 2 ms: cross-partition events land
        // inside the current window.
        let n = 2u32;
        let hop = SimTime::from_ms(1);
        run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(10),
            SimTime::from_ms(2),
        );
    }

    #[test]
    fn events_beyond_end_time_not_processed() {
        let n = 2u32;
        let hop = SimTime::from_ms(3);
        let (_, stats) = run_parallel(
            ring_shards(n, 2, hop),
            n as usize,
            &[0, 1],
            vec![(SimTime::ZERO, LpId(0), 0)],
            SimTime::from_ms(7),
            hop,
        );
        // Events at t=0,3,6 run; t=9 is beyond end.
        assert_eq!(stats.total_events, 3);
    }
}
