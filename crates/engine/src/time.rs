//! Virtual time: a nanosecond-resolution monotone clock.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Simulation (virtual) time or duration, in nanoseconds.
///
/// A single type serves for both instants and durations, as is usual in
/// discrete-event kernels; arithmetic saturates nowhere — overflow of a
/// `u64` nanosecond clock takes ~584 years of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional milliseconds (rounds to nearest nanosecond).
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_ms_f64(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1e6).round() as u64)
    }

    /// From fractional seconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
        assert_eq!(SimTime::from_ms_f64(1.5), SimTime::from_us(1_500));
        assert_eq!(SimTime::from_secs_f64(0.25), SimTime::from_ms(250));
    }

    #[test]
    fn negative_float_clamps() {
        assert_eq!(SimTime::from_ms_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(3);
        let b = SimTime::from_ms(1);
        assert_eq!(a + b, SimTime::from_ms(4));
        assert_eq!(a - b, SimTime::from_ms(2));
        assert_eq!(b * 5, SimTime::from_ms(5));
        assert_eq!(a / 3, SimTime::from_ms(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn roundtrip_float() {
        let t = SimTime::from_ms_f64(2.75);
        assert!((t.as_ms_f64() - 2.75).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.00275).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_ms(1);
        let b = SimTime::from_ms(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
    }
}
