//! Cluster synchronization cost: the paper's Figure 5.
//!
//! Figure 5 reports the global-barrier cost of the TeraGrid NCSA/SDSC
//! Itanium-2 cluster (Myrinet 2000, MPICH-GM) as a function of the
//! number of simulation-engine nodes: "the time used by the simulation
//! engine nodes for global synchronization, which need to be executed
//! every MLL time". The anchor quoted in the text is **~0.58 ms for 100
//! nodes** (Section 3.4.1), with the curve rising from tens of
//! microseconds at 2 nodes toward ~0.8 ms at 112+.
//!
//! A dissemination/tree barrier costs `Θ(log N)` message rounds, so we
//! model `C(N) = a + b·log2(N)` and fit `(a, b)` to the figure's
//! anchors. [`SyncCostModel::teragrid`] is that fit; a custom model can
//! be built with [`SyncCostModel::new`] for sensitivity studies
//! (ablation bench `sync_model`).

use crate::time::SimTime;

/// Affine-in-log2 synchronization cost model `C(N) = a + b·log2(N)`.
#[derive(Debug, Clone, Copy)]
pub struct SyncCostModel {
    /// Fixed cost per barrier, microseconds.
    pub base_us: f64,
    /// Cost per doubling of the node count, microseconds.
    pub per_log2_us: f64,
}

impl SyncCostModel {
    /// A custom model.
    pub fn new(base_us: f64, per_log2_us: f64) -> Self {
        SyncCostModel {
            base_us,
            per_log2_us,
        }
    }

    /// Fit to the paper's Figure 5 (TeraGrid Itanium-2 / Myrinet):
    /// `C(100) ≈ 580 µs`, `C(2) ≈ 100 µs`.
    pub fn teragrid() -> Self {
        // b = (580 - 100) / (log2(100) - 1) ≈ 85.1; a = 100 - b.
        SyncCostModel::new(14.9, 85.1)
    }

    /// Barrier cost for `n` engine nodes, microseconds. 1 node needs no
    /// synchronization.
    pub fn cost_us(&self, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        self.base_us + self.per_log2_us * (n as f64).log2()
    }

    /// Barrier cost as virtual time.
    pub fn cost(&self, n: usize) -> SimTime {
        SimTime::from_ms_f64(self.cost_us(n) / 1_000.0)
    }
}

// The wall-clock *measurement* companion to this model
// (`measure_barrier_cost_us`) lives in the bench crate: the engine is
// deterministic-critical and must never read host time (simlint D2).

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teragrid_anchors_match_paper() {
        let m = SyncCostModel::teragrid();
        // ~0.58 ms at 100 nodes (Section 3.4.1).
        let c100 = m.cost_us(100);
        assert!((c100 - 580.0).abs() < 15.0, "C(100) = {c100}");
        let c2 = m.cost_us(2);
        assert!((c2 - 100.0).abs() < 5.0, "C(2) = {c2}");
    }

    #[test]
    fn monotone_in_node_count() {
        let m = SyncCostModel::teragrid();
        let mut prev = 0.0;
        for n in [1, 2, 6, 16, 48, 80, 112, 128] {
            let c = m.cost_us(n);
            assert!(c >= prev, "C({n}) = {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn single_node_costs_nothing() {
        assert_eq!(SyncCostModel::teragrid().cost_us(1), 0.0);
        assert_eq!(SyncCostModel::teragrid().cost(1), SimTime::ZERO);
    }

    #[test]
    fn cost_as_simtime_roundtrips() {
        let m = SyncCostModel::teragrid();
        let t = m.cost(90);
        assert!((t.as_ms_f64() * 1000.0 - m.cost_us(90)).abs() < 0.01);
    }
}
