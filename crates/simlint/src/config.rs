//! `simlint.toml`: which paths are scanned and how each rule applies.
//!
//! The parser is a deliberately tiny TOML subset (the workspace has no
//! registry access, in the spirit of `shims/`): `[section]` headers,
//! `key = "string"`, `key = ["a", "b"]`, `#` comments. That covers the
//! whole configuration surface; anything fancier is a parse error with
//! a line number rather than a silent misread.

use crate::rules::Rule;
use std::collections::BTreeMap;

/// How violations of a rule are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Report and fail the gate (subject to the baseline).
    Deny,
    /// Report but never fail.
    Warn,
    /// Rule disabled.
    Off,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Off => "off",
        }
    }
}

/// Which crates a rule applies to. Crate names are directory names
/// (`engine`, `routing`, …; the workspace `tests` member is `tests`).
#[derive(Debug, Clone, Default)]
pub enum CrateScope {
    /// Every scanned crate.
    #[default]
    All,
    /// Only the listed crates.
    Include(Vec<String>),
    /// Every crate except the listed ones.
    Exclude(Vec<String>),
}

impl CrateScope {
    pub fn contains(&self, krate: &str) -> bool {
        match self {
            CrateScope::All => true,
            CrateScope::Include(list) => list.iter().any(|c| c == krate),
            CrateScope::Exclude(list) => !list.iter().any(|c| c == krate),
        }
    }
}

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub severity: Severity,
    pub scope: CrateScope,
}

/// The whole configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace-relative directories to scan for `.rs` files.
    pub include: Vec<String>,
    /// Workspace-relative path prefixes to skip (fixtures, vendored
    /// code). `target` directories are always skipped.
    pub exclude: Vec<String>,
    /// D6: workspace-relative path of the snapshot codec file.
    pub drift_codec: String,
    /// D6: type names whose struct fields must round-trip through the
    /// codec. Empty list disables the rule.
    pub drift_types: Vec<String>,
    rules: BTreeMap<&'static str, RuleConfig>,
}

impl Default for Config {
    /// The defaults mirror the checked-in `simlint.toml`, so the tool
    /// behaves identically when run without a config file.
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        rules.insert(
            Rule::HashIteration.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Include(
                    [
                        "engine",
                        "routing",
                        "netsim",
                        "faults",
                        "partition",
                        "core",
                        "snapshot",
                        "simlint",
                    ]
                    .map(String::from)
                    .to_vec(),
                ),
            },
        );
        rules.insert(
            Rule::WallClock.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Exclude(vec!["bench".to_string()]),
            },
        );
        rules.insert(
            Rule::EntropyRng.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Exclude(vec!["bench".to_string()]),
            },
        );
        rules.insert(
            Rule::FloatOrder.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Include(
                    [
                        "engine",
                        "parutil",
                        "netsim",
                        "routing",
                        "partition",
                        "core",
                        "snapshot",
                        "faults",
                    ]
                    .map(String::from)
                    .to_vec(),
                ),
            },
        );
        rules.insert(
            Rule::DeterminismTaint.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Exclude(vec!["bench".to_string()]),
            },
        );
        rules.insert(
            Rule::SnapshotDrift.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::All,
            },
        );
        rules.insert(
            Rule::UnwrapAudit.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::All,
            },
        );
        rules.insert(
            Rule::CastLossy.slug(),
            RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::Include(vec!["engine".to_string(), "routing".to_string()]),
            },
        );
        Config {
            include: vec!["crates".to_string(), "tests".to_string()],
            exclude: vec!["crates/simlint/tests/fixtures".to_string()],
            drift_codec: "crates/snapshot/src/codec.rs".to_string(),
            drift_types: [
                "WorldState",
                "FlowEntryState",
                "ReceiverEntryState",
                "TcpSenderState",
                "RouteCacheState",
                "RouteCacheShardState",
                "RouteCacheEntryState",
                "ProfileData",
                "RouteCacheStats",
                "ResumeState",
                "Packet",
                "EventRecord",
            ]
            .map(String::from)
            .to_vec(),
            rules,
        }
    }
}

impl Config {
    /// The configuration of `rule` (defaults if the file omitted it).
    pub fn rule(&self, rule: Rule) -> RuleConfig {
        if rule == Rule::MalformedSuppression {
            // Broken suppressions are always hard errors: a suppression
            // that silently fails to apply would hide a violation, one
            // that silently applies without a reason defeats the audit.
            return RuleConfig {
                severity: Severity::Deny,
                scope: CrateScope::All,
            };
        }
        self.rules.get(rule.slug()).cloned().unwrap_or(RuleConfig {
            severity: Severity::Deny,
            scope: CrateScope::All,
        })
    }

    /// Does `rule` apply to `krate` at all?
    pub fn applies(&self, rule: Rule, krate: &str) -> bool {
        let rc = self.rule(rule);
        rc.severity != Severity::Off && rc.scope.contains(krate)
    }

    /// Parse the `simlint.toml` text. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unterminated section header"));
                };
                section = Some(name.trim().to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value = value.trim();
            match section.as_deref() {
                Some("lint") => match key {
                    "include" => cfg.include = parse_string_array(value, lineno)?,
                    "exclude" => cfg.exclude = parse_string_array(value, lineno)?,
                    other => {
                        return Err(format!("line {lineno}: unknown [lint] key `{other}`"));
                    }
                },
                Some(s) if s.starts_with("rule.") => {
                    let slug = &s["rule.".len()..];
                    let Some(rule) = Rule::from_slug(slug) else {
                        return Err(format!("section [rule.{slug}]: unknown rule `{slug}`"));
                    };
                    if rule == Rule::MalformedSuppression {
                        return Err(format!(
                            "section [rule.{slug}]: `{slug}` is not configurable"
                        ));
                    }
                    // D6-specific keys live on Config, not RuleConfig.
                    if rule == Rule::SnapshotDrift && key == "codec" {
                        cfg.drift_codec = parse_string(value, lineno)?;
                        continue;
                    }
                    if rule == Rule::SnapshotDrift && key == "types" {
                        cfg.drift_types = parse_string_array(value, lineno)?;
                        continue;
                    }
                    let entry = cfg.rules.entry(rule.slug()).or_insert_with(|| RuleConfig {
                        severity: Severity::Deny,
                        scope: CrateScope::All,
                    });
                    match key {
                        "severity" => {
                            entry.severity = match parse_string(value, lineno)?.as_str() {
                                "deny" => Severity::Deny,
                                "warn" => Severity::Warn,
                                "off" => Severity::Off,
                                other => {
                                    return Err(format!(
                                        "line {lineno}: severity must be \
                                         deny|warn|off, got `{other}`"
                                    ));
                                }
                            };
                        }
                        "crates" => {
                            entry.scope = CrateScope::Include(parse_string_array(value, lineno)?);
                        }
                        "exclude-crates" => {
                            entry.scope = CrateScope::Exclude(parse_string_array(value, lineno)?);
                        }
                        other => {
                            return Err(format!("line {lineno}: unknown rule key `{other}`"));
                        }
                    }
                }
                Some(other) => {
                    return Err(format!("line {lineno}: unknown section [{other}]"));
                }
                None => {
                    return Err(format!("line {lineno}: key outside any section"));
                }
            }
        }
        Ok(cfg)
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{v}`"))?;
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected `[\"a\", \"b\"]`, got `{v}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scope_rules_sensibly() {
        let cfg = Config::default();
        assert!(cfg.applies(Rule::HashIteration, "engine"));
        assert!(!cfg.applies(Rule::HashIteration, "workloads"));
        assert!(cfg.applies(Rule::WallClock, "engine"));
        assert!(!cfg.applies(Rule::WallClock, "bench"));
        assert!(cfg.applies(Rule::UnwrapAudit, "bench"));
        assert!(cfg.applies(Rule::CastLossy, "routing"));
        assert!(!cfg.applies(Rule::CastLossy, "topology"));
    }

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[lint]
include = ["crates", "tests"]
exclude = ["crates/simlint/tests/fixtures"]

[rule.hash-iteration]
severity = "deny"
crates = ["engine", "routing"]

[rule.wall-clock]
severity = "warn"
exclude-crates = ["bench"]

[rule.unwrap-audit]
severity = "off"
"#;
        let cfg = Config::parse(text).expect("valid config");
        assert_eq!(cfg.include, vec!["crates", "tests"]);
        assert!(cfg.applies(Rule::HashIteration, "engine"));
        assert!(!cfg.applies(Rule::HashIteration, "netsim"));
        assert_eq!(cfg.rule(Rule::WallClock).severity, Severity::Warn);
        assert!(!cfg.applies(Rule::UnwrapAudit, "engine"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "[lint\ninclude = []",
            "[lint]\ninclude = crates",
            "[lint]\nbogus = \"x\"",
            "[rule.nonsense]\nseverity = \"deny\"",
            "[rule.hash-iteration]\nseverity = \"fatal\"",
            "key = \"outside\"",
            "[rule.malformed-suppression]\nseverity = \"off\"",
        ] {
            assert!(Config::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn malformed_suppression_always_denies() {
        let cfg = Config::default();
        let rc = cfg.rule(Rule::MalformedSuppression);
        assert_eq!(rc.severity, Severity::Deny);
        assert!(rc.scope.contains("anything"));
    }
}
