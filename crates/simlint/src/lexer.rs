//! A hand-rolled Rust lexer, just deep enough for lint rules: it
//! separates identifiers, punctuation, and literals, swallows string
//! contents (so `"HashMap"` in a string can never look like a type),
//! and keeps every comment with its line number (so suppression
//! directives can be matched to the code they annotate).
//!
//! Every token carries its 1-based line *and column* (in characters),
//! so rules can point a caret at the offending token and reports can
//! emit editor-friendly `file:line:col` locations.
//!
//! It does **not** build an AST; the item/block structure the newer
//! rules need is recovered by [`crate::parser`], which works directly
//! on this token stream, and the older rules scan it flat.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `as`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` = `:`, `:`).
    Punct,
    /// String literal (`"…"`, `r"…"`, `r#"…"#`, `b"…"`), quotes kept.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0x1f`, `1e9`, `1.5e-3`, `0.050_f64`).
    Num,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One token with its 1-based source line and column.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
}

/// One comment (line `//…` or block `/*…*/`) with the 1-based line and
/// column it starts on. Text includes the comment markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub col: u32,
    pub text: String,
}

/// Lex `src` into tokens and comments. Unterminated constructs are
/// closed at end of input rather than reported — the compiler is the
/// authority on well-formedness; the linter only needs to stay sane.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        toks: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking line and column numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let col = self.col;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => {
                    let s = self.string_literal();
                    self.push(TokKind::Str, s, line, col);
                }
                'r' | 'b' if self.starts_prefixed_literal() => {
                    let (kind, s) = self.prefixed_literal();
                    self.push(kind, s, line, col);
                }
                '\'' => self.quote(line, col),
                _ if c.is_alphabetic() || c == '_' => {
                    let s = self.ident();
                    self.push(TokKind::Ident, s, line, col);
                }
                _ if c.is_ascii_digit() => {
                    let s = self.number();
                    self.push(TokKind::Num, s, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, col, text });
    }

    /// Block comment; Rust block comments nest to any depth.
    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { line, col, text });
    }

    /// `"…"` with escape handling; returns the literal including quotes.
    fn string_literal(&mut self) -> String {
        let mut s = String::new();
        s.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                s.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    s.push(e);
                }
            } else if c == '"' {
                s.push(c);
                self.bump();
                break;
            } else {
                s.push(c);
                self.bump();
            }
        }
        s
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`?
    /// (Otherwise a leading `r`/`b` is an ordinary identifier char.)
    fn starts_prefixed_literal(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"' | '\''), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    /// Raw / byte string or byte char after an `r`/`b`/`br` prefix.
    fn prefixed_literal(&mut self) -> (TokKind, String) {
        let mut s = String::new();
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if c == 'r' || c == 'b' {
                raw |= c == 'r';
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match self.peek(0) {
            Some('\'') => {
                // b'x' — byte char, same shape as a char literal.
                s.push(self.bump().unwrap_or('\''));
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        s.push(c);
                        self.bump();
                        if let Some(e) = self.bump() {
                            s.push(e);
                        }
                    } else {
                        s.push(c);
                        self.bump();
                        if c == '\'' {
                            break;
                        }
                    }
                }
                (TokKind::Char, s)
            }
            Some('#') if raw => {
                // r#"…"# with any number of hash guards: the string only
                // closes at a `"` followed by *exactly as many* hashes as
                // opened it, so `"` and `"#` can appear inside `r##"…"##`.
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    hashes += 1;
                    s.push('#');
                    self.bump();
                }
                if self.peek(0) == Some('"') {
                    s.push('"');
                    self.bump();
                    while let Some(c) = self.bump() {
                        s.push(c);
                        if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                            for _ in 0..hashes {
                                s.push('#');
                                self.bump();
                            }
                            break;
                        }
                    }
                    (TokKind::Str, s)
                } else {
                    // `r#ident` (raw identifier): lex the rest as ident.
                    s.push_str(&self.ident());
                    (TokKind::Ident, s)
                }
            }
            Some('"') if raw => {
                // r"…" — no escapes, closes at the first quote.
                s.push('"');
                self.bump();
                while let Some(c) = self.bump() {
                    s.push(c);
                    if c == '"' {
                        break;
                    }
                }
                (TokKind::Str, s)
            }
            Some('"') => {
                // b"…" — escapes behave like a normal string.
                let rest = self.string_literal();
                s.push_str(&rest);
                (TokKind::Str, s)
            }
            _ => (TokKind::Ident, s), // bare `r` / `b` identifier
        }
    }

    /// `'` starts either a char literal or a lifetime. The ambiguity is
    /// resolved by the third character: `'x'` closes after one payload
    /// char (or after an escape), `'ident` never closes — so look for
    /// the trailing quote, falling back to lifetime when absent.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c.is_alphanumeric() || c == '_' => after == Some('\''),
            Some(_) => true, // '(' etc: punctuation chars are char literals
            None => true,
        };
        if is_char {
            let mut s = String::new();
            s.push(self.bump().unwrap_or('\'')); // opening '
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    s.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        s.push(e);
                    }
                } else {
                    s.push(c);
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
            }
            self.push(TokKind::Char, s, line, col);
        } else {
            let mut s = String::new();
            s.push(self.bump().unwrap_or('\'')); // the '
            s.push_str(&self.ident());
            self.push(TokKind::Lifetime, s, line, col);
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Number: digits, then letters/digits/underscores (hex, suffixes,
    /// exponents), plus one `.` only when a digit follows — so `0..n`
    /// stays three tokens — and a signed exponent (`1.5e-3`, `2E+8`)
    /// when the literal is decimal, so float literals survive as one
    /// token for the float-order rule.
    fn number(&mut self) -> String {
        let mut s = String::new();
        let mut saw_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else if c == '.' && !saw_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                saw_dot = true;
                s.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && s.ends_with(['e', 'E'])
                && !s.starts_with("0x")
                && !s.starts_with("0X")
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Signed exponent of a decimal float; `0xAE-3` stays a
                // subtraction because hex digits exclude an exponent.
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

/// Is `lit` (a [`TokKind::Str`] lexeme, quotes and prefixes included)
/// the empty string literal?
pub fn str_literal_is_empty(lit: &str) -> bool {
    let inner = lit
        .trim_start_matches(['b', 'r'])
        .trim_start_matches('#')
        .trim_end_matches('#');
    inner == "\"\""
}

/// Is `lit` (a [`TokKind::Num`] lexeme) a floating-point literal? True
/// for decimal points (`0.5`), exponents (`1e9`, `1.5e-3`) and explicit
/// `f32`/`f64` suffixes; hex/octal/binary literals are never floats.
pub fn num_literal_is_float(lit: &str) -> bool {
    let lower = lit.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    lower.contains('.') || lower.contains('e') || lower.ends_with("f32") || lower.ends_with("f64")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn render(src: &str) -> String {
        lex(src)
            .0
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    #[test]
    fn strings_hide_their_contents() {
        let (toks, _) = lex(r#"let x = "HashMap::iter()"; y"#);
        assert!(idents(r#"let x = "HashMap::iter()"; y"#).contains(&"y".to_string()));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(!idents(r#""HashMap""#).contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let (toks, _) = lex(r###"let s = r#"a "quoted" HashMap"#; done"###);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(toks.iter().any(|t| t.text == "done"));
        assert!(!toks.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn multi_hash_raw_strings_swallow_shorter_guards() {
        // `"#` inside an `r##"…"##` literal must not close it.
        let src = r####"let s = r##"quote "# still inside"##; after"####;
        let (toks, _) = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1, "{toks:?}");
        assert!(strs[0].text.contains("still inside"));
        assert!(toks.iter().any(|t| t.text == "after"), "{toks:?}");
        assert!(!toks.iter().any(|t| t.text == "still"));
    }

    #[test]
    fn byte_raw_strings_with_guards() {
        let src = r###"let b = br#"bytes "with" quotes"#; tail"###;
        let (toks, _) = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(toks.iter().any(|t| t.text == "tail"));
        assert!(!toks.iter().any(|t| t.text == "quotes"));
    }

    #[test]
    fn unterminated_raw_string_closes_at_eof() {
        // Tolerance contract: never hang, never panic, keep what we saw.
        let (toks, _) = lex(r##"let s = r#"never closed"##);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn lifetime_edge_forms() {
        // `'_` anonymous lifetime, labeled loops, lifetime at EOF, and
        // char literals whose payload is an identifier character.
        let (toks, _) = lex("fn f(x: &'_ u8) { 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'_", "'outer", "'outer"], "{toks:?}");

        let (toks, _) = lex("let r = 'r'; let u = '_'; let esc = '\\u{1F600}';");
        let chars: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'r'", "'_'", "'\\u{1F600}'"], "{toks:?}");

        let (toks, _) = lex("match c { 'a'..='z' => 1, _ => 0 }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        // Trailing lifetime at end of input must not loop or panic.
        let (toks, _) = lex("&'a");
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("'a"));
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Lifetime));
    }

    #[test]
    fn byte_char_with_escaped_quote() {
        let (toks, _) = lex(r"let q = b'\''; next");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1, "{toks:?}");
        assert_eq!(chars[0].text, r"b'\''");
        assert!(toks.iter().any(|t| t.text == "next"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// simlint: allow(x) -- reason\nlet b = 2; // trailing\n";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("simlint"));
        assert_eq!(comments[1].line, 3);
        assert_eq!(comments[1].col, 12);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("a /* outer /* inner */ still */ b");
        assert_eq!(comments.len(), 1);
        let names = toks
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(names, "a b");
    }

    #[test]
    fn deeply_nested_and_unterminated_block_comments() {
        // Three levels, with stars and slashes scattered inside.
        let (toks, comments) = lex("x /* 1 /* 2 /* 3 */ * / */ ** */ y");
        assert_eq!(comments.len(), 1, "{comments:?}");
        assert_eq!(render("x /* 1 /* 2 /* 3 */ * / */ ** */ y"), "x y");
        assert_eq!(toks.len(), 2);
        // Unterminated nesting swallows to EOF without panicking.
        let (toks, comments) = lex("a /* open /* deeper */ still-open b");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1, "everything after /* is comment: {toks:?}");
        // A stray close without an open is plain punctuation.
        assert_eq!(render("a */ b"), "a * / b");
    }

    #[test]
    fn ranges_are_not_floats() {
        let (toks, _) = lex("for i in 0..n { let f = 0.050; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "0.050"]);
    }

    #[test]
    fn signed_exponents_are_single_tokens() {
        let (toks, _) = lex("let a = 1.5e-3; let b = 2E+8; let c = 9e4; let d = x - 3;");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "2E+8", "9e4", "3"], "{toks:?}");
        // Hex literals ending in E are subtraction, not an exponent.
        assert_eq!(render("0xAE-3"), "0xAE - 3");
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn columns_are_tracked() {
        let (toks, _) = lex("let x = 1;\n    let yy = 2;");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.text == name)
                .map(|t| (t.line, t.col))
        };
        assert_eq!(find("x"), Some((1, 5)));
        assert_eq!(find("yy"), Some((2, 9)));
        assert_eq!(find("2"), Some((2, 14)));
    }

    #[test]
    fn empty_string_detection() {
        assert!(str_literal_is_empty("\"\""));
        assert!(!str_literal_is_empty("\"x\""));
        assert!(!str_literal_is_empty("\" \""));
    }

    #[test]
    fn float_literal_detection() {
        for f in ["0.5", "1e9", "1.5e-3", "2E+8", "3f64", "0.0f32", "1_000.0"] {
            assert!(num_literal_is_float(f), "{f} is a float");
        }
        for n in ["42", "0x1f", "0o17", "0b101", "1_000", "7u32", "0xE3"] {
            assert!(!num_literal_is_float(n), "{n} is not a float");
        }
    }
}
