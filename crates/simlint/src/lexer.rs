//! A hand-rolled Rust lexer, just deep enough for lint rules: it
//! separates identifiers, punctuation, and literals, swallows string
//! contents (so `"HashMap"` in a string can never look like a type),
//! and keeps every comment with its line number (so suppression
//! directives can be matched to the code they annotate).
//!
//! It does **not** build an AST; the rule engine in [`crate::rules`]
//! works directly on the token stream.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `as`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` = `:`, `:`).
    Punct,
    /// String literal (`"…"`, `r"…"`, `r#"…"#`, `b"…"`), quotes kept.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0x1f`, `1e9`, `0.050_f64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line `//…` or block `/*…*/`) with the 1-based line it
/// starts on. Text includes the comment markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lex `src` into tokens and comments. Unterminated constructs are
/// closed at end of input rather than reported — the compiler is the
/// authority on well-formedness; the linter only needs to stay sane.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> (Vec<Tok>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    let s = self.string_literal();
                    self.push(TokKind::Str, s, line);
                }
                'r' | 'b' if self.starts_prefixed_literal() => {
                    let (kind, s) = self.prefixed_literal();
                    self.push(kind, s, line);
                }
                '\'' => self.quote(line),
                _ if c.is_alphabetic() || c == '_' => {
                    let s = self.ident();
                    self.push(TokKind::Ident, s, line);
                }
                _ if c.is_ascii_digit() => {
                    let s = self.number();
                    self.push(TokKind::Num, s, line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        (self.toks, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { line, text });
    }

    /// Block comment; Rust block comments nest.
    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { line, text });
    }

    /// `"…"` with escape handling; returns the literal including quotes.
    fn string_literal(&mut self) -> String {
        let mut s = String::new();
        s.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                s.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    s.push(e);
                }
            } else if c == '"' {
                s.push(c);
                self.bump();
                break;
            } else {
                s.push(c);
                self.bump();
            }
        }
        s
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`?
    /// (Otherwise a leading `r`/`b` is an ordinary identifier char.)
    fn starts_prefixed_literal(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"' | '\''), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    /// Raw / byte string or byte char after an `r`/`b`/`br` prefix.
    fn prefixed_literal(&mut self) -> (TokKind, String) {
        let mut s = String::new();
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if c == 'r' || c == 'b' {
                raw |= c == 'r';
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match self.peek(0) {
            Some('\'') => {
                // b'x' — byte char, same shape as a char literal.
                s.push(self.bump().unwrap_or('\''));
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        s.push(c);
                        self.bump();
                        if let Some(e) = self.bump() {
                            s.push(e);
                        }
                    } else {
                        s.push(c);
                        self.bump();
                        if c == '\'' {
                            break;
                        }
                    }
                }
                (TokKind::Char, s)
            }
            Some('#') if raw => {
                // r#"…"# with any number of hashes.
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    hashes += 1;
                    s.push('#');
                    self.bump();
                }
                if self.peek(0) == Some('"') {
                    s.push('"');
                    self.bump();
                    while let Some(c) = self.bump() {
                        s.push(c);
                        if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                            for _ in 0..hashes {
                                s.push('#');
                                self.bump();
                            }
                            break;
                        }
                    }
                    (TokKind::Str, s)
                } else {
                    // `r#ident` (raw identifier): lex the rest as ident.
                    s.push_str(&self.ident());
                    (TokKind::Ident, s)
                }
            }
            Some('"') if raw => {
                // r"…" — no escapes, closes at the first quote.
                s.push('"');
                self.bump();
                while let Some(c) = self.bump() {
                    s.push(c);
                    if c == '"' {
                        break;
                    }
                }
                (TokKind::Str, s)
            }
            Some('"') => {
                // b"…" — escapes behave like a normal string.
                let rest = self.string_literal();
                s.push_str(&rest);
                (TokKind::Str, s)
            }
            _ => (TokKind::Ident, s), // bare `r` / `b` identifier
        }
    }

    /// `'` starts either a char literal or a lifetime.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if c.is_alphanumeric() || c == '_' => after == Some('\''),
            Some(_) => true, // '(' etc: punctuation chars are char literals
            None => true,
        };
        if is_char {
            let mut s = String::new();
            s.push(self.bump().unwrap_or('\'')); // opening '
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    s.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        s.push(e);
                    }
                } else {
                    s.push(c);
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
            }
            self.push(TokKind::Char, s, line);
        } else {
            let mut s = String::new();
            s.push(self.bump().unwrap_or('\'')); // the '
            s.push_str(&self.ident());
            self.push(TokKind::Lifetime, s, line);
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Number: digits, then letters/digits/underscores (hex, suffixes,
    /// exponents), plus one `.` only when a digit follows — so `0..n`
    /// stays three tokens.
    fn number(&mut self) -> String {
        let mut s = String::new();
        let mut saw_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else if c == '.' && !saw_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                saw_dot = true;
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

/// Is `lit` (a [`TokKind::Str`] lexeme, quotes and prefixes included)
/// the empty string literal?
pub fn str_literal_is_empty(lit: &str) -> bool {
    let inner = lit
        .trim_start_matches(['b', 'r'])
        .trim_start_matches('#')
        .trim_end_matches('#');
    inner == "\"\""
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let (toks, _) = lex(r#"let x = "HashMap::iter()"; y"#);
        assert!(idents(r#"let x = "HashMap::iter()"; y"#).contains(&"y".to_string()));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(!idents(r#""HashMap""#).contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let (toks, _) = lex(r###"let s = r#"a "quoted" HashMap"#; done"###);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(toks.iter().any(|t| t.text == "done"));
        assert!(!toks.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// simlint: allow(x) -- reason\nlet b = 2; // trailing\n";
        let (_, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("simlint"));
        assert_eq!(comments[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("a /* outer /* inner */ still */ b");
        assert_eq!(comments.len(), 1);
        let names = toks
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(names, "a b");
    }

    #[test]
    fn ranges_are_not_floats() {
        let (toks, _) = lex("for i in 0..n { let f = 0.050; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "0.050"]);
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn empty_string_detection() {
        assert!(str_literal_is_empty("\"\""));
        assert!(!str_literal_is_empty("\"x\""));
        assert!(!str_literal_is_empty("\" \""));
    }
}
