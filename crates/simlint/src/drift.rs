//! D6 `snapshot-drift`: the cross-file structural rule.
//!
//! The snapshot container round-trips world state through the
//! hand-written codec in `crates/snapshot/src/codec.rs`. Adding a field
//! to a serialized struct without touching the codec compiles cleanly
//! and round-trips silently wrong — the field is dropped on restore.
//! This pass makes that drift a gate failure at the field's
//! declaration site.
//!
//! How it works (no type inference, resilient to refactors):
//!
//! 1. Parse the codec file. Every `fn put_*` whose signature mentions a
//!    tracked type name is an *encoder* for it; every `fn get_*` whose
//!    signature mentions it (usually in the return type) is a
//!    *decoder*. Discovery is signature-driven because codec fn names
//!    don't always echo the type (`put_sender` serializes
//!    `TcpSenderState`).
//! 2. Encode-side mentions are identifiers preceded by `.` in encoder
//!    bodies (field reads); decode-side mentions are *any* identifier
//!    in decoder bodies (struct-literal shorthand `State { key, stamp }`
//!    never dots the names). Types with no dedicated codec fn (their
//!    fields are inlined into a parent's fns, like `RouteCacheStats`
//!    inside `put_profile`) fall back to whole-codec-file mention sets.
//! 3. Every field of the tracked type's struct definition must appear
//!    in BOTH sets; a miss is reported at the field's line, suppressible
//!    with `// simlint: allow(snapshot-drift) -- <reason>` there.
//!
//! When the codec file is absent (non-snapshot workspaces, temp test
//! workspaces) the pass is silent: there is nothing to drift from.

use crate::config::{Config, Severity};
use crate::lexer::{lex, Tok, TokKind};
use crate::parser::{flatten, parse, Item, ItemKind};
use crate::rules::{parse_suppressions, Rule, Violation};
use std::collections::BTreeSet;

/// Run the drift pass over pre-read workspace sources
/// (`(relative path, crate, source)` tuples).
pub fn scan_drift(files: &[(String, String, String)], cfg: &Config) -> Vec<Violation> {
    let severity = cfg.rule(Rule::SnapshotDrift).severity;
    if severity == Severity::Off || cfg.drift_types.is_empty() {
        return Vec::new();
    }
    let Some((_, _, codec_src)) = files.iter().find(|(rel, _, _)| *rel == cfg.drift_codec) else {
        return Vec::new(); // no codec in this workspace: nothing to drift from
    };

    let (codec_toks, _) = lex(codec_src);
    let codec_items = parse(&codec_toks);
    let codec_fns: Vec<&Item> = flatten(&codec_items)
        .into_iter()
        .filter(|it| it.kind == ItemKind::Fn && !it.is_test)
        .collect();

    // Whole-file fallback mention sets, computed once.
    let file_encode = dot_idents(&codec_toks, 0, codec_toks.len());
    let file_decode = all_idents(&codec_toks, 0, codec_toks.len());

    let mut out = Vec::new();
    for ty in &cfg.drift_types {
        // Signature-driven encoder/decoder discovery.
        let mut encode: BTreeSet<String> = BTreeSet::new();
        let mut decode: BTreeSet<String> = BTreeSet::new();
        let mut have_enc = false;
        let mut have_dec = false;
        for f in &codec_fns {
            let Some((open, close)) = f.body else {
                continue;
            };
            let sig_mentions_ty = codec_toks[f.span.0..open]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == *ty);
            if !sig_mentions_ty {
                continue;
            }
            if f.name.starts_with("put_") {
                have_enc = true;
                encode.extend(dot_idents(&codec_toks, open, close + 1));
            } else if f.name.starts_with("get_") {
                have_dec = true;
                decode.extend(all_idents(&codec_toks, open, close + 1));
            }
        }
        let encode = if have_enc { &encode } else { &file_encode };
        let decode = if have_dec { &decode } else { &file_decode };

        // Find the struct definition and check each field.
        for (rel, krate, src) in files {
            if !cfg.applies(Rule::SnapshotDrift, krate) {
                continue;
            }
            // Cheap substring prefilter with an ident-boundary check, so
            // `struct RouteCacheState` does not match from within
            // `struct RouteCacheStats`.
            let needle = format!("struct {ty}");
            let boundary_hit = src.match_indices(&needle).any(|(at, _)| {
                src[at + needle.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_')
            });
            if !boundary_hit {
                continue;
            }
            let (toks, comments) = lex(src);
            let items = parse(&toks);
            let sup = parse_suppressions(&comments);
            let lines: Vec<&str> = src.lines().collect();
            for it in flatten(&items) {
                if it.kind != ItemKind::Struct || it.name != *ty || it.is_test {
                    continue;
                }
                for field in &it.fields {
                    let miss_enc = !encode.contains(&field.name);
                    let miss_dec = !decode.contains(&field.name);
                    if !(miss_enc || miss_dec) {
                        continue;
                    }
                    if sup.allows(Rule::SnapshotDrift, field.line) {
                        continue;
                    }
                    let side = match (miss_enc, miss_dec) {
                        (true, true) => "both the encode (put_*) and decode (get_*) paths",
                        (true, false) => "the encode path (put_*)",
                        (false, true) => "the decode path (get_*)",
                        (false, false) => unreachable!(),
                    };
                    let raw = lines.get(field.line as usize - 1).copied().unwrap_or("");
                    out.push(Violation::at(
                        Rule::SnapshotDrift,
                        rel,
                        field.line,
                        field.col,
                        field.name.len() as u32,
                        raw,
                        format!(
                            "field `{}` of `{ty}` is missing from {side} in {}",
                            field.name, cfg.drift_codec
                        ),
                        severity,
                    ));
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out.dedup();
    out
}

/// Identifiers preceded by `.` in `[lo, hi)` — field accesses.
fn dot_idents(toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for j in lo.max(1)..hi.min(toks.len()) {
        if toks[j].kind == TokKind::Ident && toks[j - 1].text == "." {
            set.insert(toks[j].text.clone());
        }
    }
    set
}

/// Every identifier in `[lo, hi)`.
fn all_idents(toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for t in toks.iter().take(hi.min(toks.len())).skip(lo) {
        if t.kind == TokKind::Ident {
            set.insert(t.text.clone());
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(codec: &str, types: &[&str]) -> Config {
        let mut cfg = Config::default();
        cfg.drift_codec = codec.to_string();
        cfg.drift_types = types.iter().map(|s| s.to_string()).collect();
        cfg
    }

    const CODEC: &str = r#"
        pub fn put_world_state(out: &mut Vec<u8>, ws: &WorldState) {
            put_u64(out, ws.flow_counter);
            put_u64(out, ws.seedling);
        }
        pub fn get_world_state(r: &mut Reader) -> WorldState {
            let flow_counter = get_u64(r);
            let seedling = get_u64(r);
            WorldState { flow_counter, seedling }
        }
    "#;

    const STRUCT_OK: &str = r#"
        pub struct WorldState {
            pub flow_counter: u64,
            pub seedling: u64,
        }
    "#;

    fn run(codec: &str, def: &str, types: &[&str]) -> Vec<Violation> {
        let files = vec![
            (
                "crates/snapshot/src/codec.rs".to_string(),
                "snapshot".to_string(),
                codec.to_string(),
            ),
            (
                "crates/netsim/src/world.rs".to_string(),
                "netsim".to_string(),
                def.to_string(),
            ),
        ];
        scan_drift(&files, &cfg_for("crates/snapshot/src/codec.rs", types))
    }

    #[test]
    fn complete_codec_is_clean() {
        assert_eq!(run(CODEC, STRUCT_OK, &["WorldState"]), vec![]);
    }

    #[test]
    fn field_missing_from_both_paths_fires() {
        let drifted = r#"
            pub struct WorldState {
                pub flow_counter: u64,
                pub seedling: u64,
                pub max_retries: u32,
            }
        "#;
        let v = run(CODEC, drifted, &["WorldState"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SnapshotDrift);
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("max_retries"), "{}", v[0].message);
        assert!(v[0].message.contains("both the encode"), "{}", v[0].message);
    }

    #[test]
    fn field_missing_from_one_path_names_the_side() {
        // Encoded but never decoded: shows up in put_ but not get_.
        let codec = r#"
            fn put_world_state(out: &mut Vec<u8>, ws: &WorldState) {
                put_u64(out, ws.flow_counter);
                put_u64(out, ws.seedling);
            }
            fn get_world_state(r: &mut Reader) -> WorldState {
                let flow_counter = get_u64(r);
                WorldState { flow_counter, seedling: 0 }
            }
        "#;
        // `seedling` appears as a struct-literal key in get_, so it IS a
        // decode-side mention; drop it entirely instead.
        let codec_missing_decode = r#"
            fn put_world_state(out: &mut Vec<u8>, ws: &WorldState) {
                put_u64(out, ws.flow_counter);
                put_u64(out, ws.seedling);
            }
            fn get_world_state(r: &mut Reader) -> WorldState {
                let flow_counter = get_u64(r);
                WorldState { flow_counter, ..Default::default() }
            }
        "#;
        assert_eq!(run(codec, STRUCT_OK, &["WorldState"]), vec![]);
        let v = run(codec_missing_decode, STRUCT_OK, &["WorldState"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("decode path"), "{}", v[0].message);
    }

    #[test]
    fn suppression_on_field_line_is_honored() {
        let drifted = r#"
            pub struct WorldState {
                pub flow_counter: u64,
                pub seedling: u64,
                // simlint: allow(snapshot-drift) -- rebuilt on restore
                pub scratch: u32,
            }
        "#;
        assert_eq!(run(CODEC, drifted, &["WorldState"]), vec![]);
    }

    #[test]
    fn missing_codec_file_is_silent() {
        let files = vec![(
            "crates/netsim/src/world.rs".to_string(),
            "netsim".to_string(),
            "pub struct WorldState { pub ghost: u64 }".to_string(),
        )];
        let v = scan_drift(
            &files,
            &cfg_for("crates/snapshot/src/codec.rs", &["WorldState"]),
        );
        assert_eq!(v, vec![]);
    }

    #[test]
    fn untracked_types_and_test_structs_are_ignored() {
        let def = r#"
            pub struct Untracked { pub ghost: u64 }
            #[cfg(test)]
            mod tests {
                struct WorldState { pub ghost: u64 }
            }
        "#;
        assert_eq!(run(CODEC, def, &["WorldState"]), vec![]);
    }

    #[test]
    fn inlined_type_falls_back_to_whole_file_mentions() {
        // `RouteCacheStats` has no put_stats/get_stats fn; its fields are
        // handled inside put_profile/get_profile.
        let codec = r#"
            fn put_profile(out: &mut Vec<u8>, p: &ProfileData) {
                put_u64(out, p.stats.hits);
            }
            fn get_profile(r: &mut Reader) -> ProfileData {
                let hits = get_u64(r);
                ProfileData { stats: RouteCacheStats { hits } }
            }
        "#;
        let def = "pub struct RouteCacheStats { pub hits: u64 }";
        assert_eq!(run(codec, def, &["RouteCacheStats"]), vec![]);
        let drifted = "pub struct RouteCacheStats { pub hits: u64, pub misses: u64 }";
        let v = run(codec, drifted, &["RouteCacheStats"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("misses"));
    }
}
