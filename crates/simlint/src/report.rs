//! Human-readable reporting. Output is fully deterministic (sorted by
//! path, then line, then rule) so simlint's own output can be diffed.

use crate::baseline::Comparison;
use crate::rules::Violation;
use std::fmt::Write;

/// Render `violations` in compiler style:
///
/// ```text
/// crates/engine/src/lib.rs:42: deny hash-iteration (D1): `m.iter()` iterates …
///     for (k, v) in m.iter() {
///     = note: iteration order of HashMap/HashSet varies across runs; …
/// ```
pub fn render_violations(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let mut out = String::new();
    for v in sorted {
        let _ = writeln!(
            out,
            "{}:{}: {} {} ({}): {}",
            v.path,
            v.line,
            v.severity.label(),
            v.rule.slug(),
            v.rule.code(),
            v.message
        );
        if !v.snippet.is_empty() {
            let _ = writeln!(out, "    {}", v.snippet);
        }
        let _ = writeln!(out, "    = note: {}", v.rule.hint());
    }
    out
}

/// One-line scan summary.
pub fn render_summary(files: usize, violations: &[Violation], cmp: Option<&Comparison>) -> String {
    match cmp {
        Some(c) => format!(
            "simlint: {} file(s), {} violation(s): {} new, {} baselined{}",
            files,
            violations.len(),
            c.new.len(),
            c.baselined,
            if c.stale.is_empty() {
                String::new()
            } else {
                format!(", {} stale baseline entr(ies) — prune them", c.stale.len())
            }
        ),
        None => format!(
            "simlint: {} file(s), {} violation(s)",
            files,
            violations.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;
    use crate::rules::Rule;

    #[test]
    fn rendering_is_sorted_and_complete() {
        let vs = vec![
            Violation {
                rule: Rule::WallClock,
                path: "crates/b.rs".into(),
                line: 9,
                snippet: "let t = Instant::now();".into(),
                message: "`Instant::now()` wall-clock read".into(),
                severity: Severity::Deny,
            },
            Violation {
                rule: Rule::HashIteration,
                path: "crates/a.rs".into(),
                line: 3,
                snippet: "for k in m.keys() {".into(),
                message: "`m.keys()` iterates an unordered collection".into(),
                severity: Severity::Deny,
            },
        ];
        let text = render_violations(&vs);
        let a = text.find("crates/a.rs:3").expect("a.rs reported");
        let b = text.find("crates/b.rs:9").expect("b.rs reported");
        assert!(a < b, "sorted by path");
        assert!(text.contains("deny hash-iteration (D1)"));
        assert!(text.contains("= note:"));
        assert!(render_summary(2, &vs, None).contains("2 violation(s)"));
    }
}
