//! Reporting. Output is fully deterministic (sorted by path, then
//! line, then rule) so simlint's own output can be diffed.
//!
//! Two formats: compiler-style text with caret spans (default), and
//! `--format json` — a JSON array with one object per line, consumed by
//! `scripts/lint_annotations.sh` and CI annotators.

use crate::baseline::Comparison;
use crate::rules::Violation;
use std::fmt::Write;

/// Render `violations` in compiler style with a caret span:
///
/// ```text
/// crates/engine/src/lib.rs:42:19: deny hash-iteration (D1): `m.iter()` iterates …
///    42 | for (k, v) in m.iter() {
///       |               ^^^^^^^^
///       = note: iteration order of HashMap/HashSet varies across runs; …
/// ```
pub fn render_violations(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let mut out = String::new();
    for v in sorted {
        let _ = writeln!(
            out,
            "{}:{}:{}: {} {} ({}): {}",
            v.path,
            v.line,
            v.col,
            v.severity.label(),
            v.rule.slug(),
            v.rule.code(),
            v.message
        );
        if !v.snippet.is_empty() {
            let gutter = format!("{:>5}", v.line);
            let _ = writeln!(out, "{gutter} | {}", v.snippet);
            let _ = writeln!(
                out,
                "{:>5} | {}{}",
                "",
                " ".repeat(v.caret as usize),
                "^".repeat(v.len.max(1) as usize)
            );
        }
        let _ = writeln!(out, "      = note: {}", v.rule.hint());
    }
    out
}

/// Render `violations` as a JSON array, one object per line:
///
/// ```text
/// [
/// {"rule":"hash-iteration","code":"D1","path":"a.rs","line":3,"col":10,…},
/// {"rule":"wall-clock","code":"D2",…}
/// ]
/// ```
///
/// The one-object-per-line layout lets line-oriented tools (grep, sed)
/// consume it without a JSON parser; jq handles it as ordinary JSON.
pub fn render_json(violations: &[Violation]) -> String {
    let mut sorted: Vec<&Violation> = violations.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    let mut out = String::from("[\n");
    for (i, v) in sorted.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"rule\":{},\"code\":{},\"path\":{},\"line\":{},\"col\":{},\
             \"severity\":{},\"message\":{},\"snippet\":{},\"hint\":{}}}",
            json_str(v.rule.slug()),
            json_str(v.rule.code()),
            json_str(&v.path),
            v.line,
            v.col,
            json_str(v.severity.label()),
            json_str(&v.message),
            json_str(&v.snippet),
            json_str(v.rule.hint()),
        );
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// JSON string literal with the escapes the format requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One-line scan summary.
pub fn render_summary(files: usize, violations: &[Violation], cmp: Option<&Comparison>) -> String {
    match cmp {
        Some(c) => format!(
            "simlint: {} file(s), {} violation(s): {} new, {} baselined{}",
            files,
            violations.len(),
            c.new.len(),
            c.baselined,
            if c.stale.is_empty() {
                String::new()
            } else {
                format!(", {} stale baseline entr(ies) — prune them", c.stale.len())
            }
        ),
        None => format!(
            "simlint: {} file(s), {} violation(s)",
            files,
            violations.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;
    use crate::rules::Rule;

    fn sample() -> Vec<Violation> {
        vec![
            Violation {
                rule: Rule::WallClock,
                path: "crates/b.rs".into(),
                line: 9,
                col: 9,
                caret: 8,
                len: 12,
                snippet: "let t = Instant::now();".into(),
                message: "`Instant::now()` wall-clock read".into(),
                severity: Severity::Deny,
            },
            Violation {
                rule: Rule::HashIteration,
                path: "crates/a.rs".into(),
                line: 3,
                col: 15,
                caret: 14,
                len: 4,
                snippet: "for (k, v) in m.keys() {".into(),
                message: "`m.keys()` iterates an unordered collection".into(),
                severity: Severity::Deny,
            },
        ]
    }

    #[test]
    fn rendering_is_sorted_and_complete() {
        let vs = sample();
        let text = render_violations(&vs);
        let a = text.find("crates/a.rs:3:15:").expect("a.rs reported");
        let b = text.find("crates/b.rs:9:9:").expect("b.rs reported");
        assert!(a < b, "sorted by path");
        assert!(text.contains("deny hash-iteration (D1)"));
        assert!(text.contains("= note:"));
        assert!(render_summary(2, &vs, None).contains("2 violation(s)"));
    }

    #[test]
    fn caret_line_points_at_the_finding() {
        let text = render_violations(&sample());
        // The wall-clock snippet: caret 8, len 12 → 8 spaces then ^^^.
        let caret_line = text
            .lines()
            .find(|l| {
                l.trim_start().starts_with('|') && l.contains('^') && l.contains("^^^^^^^^^^^^")
            })
            .expect("caret line rendered");
        let after_bar = caret_line.split('|').nth(1).expect("gutter bar");
        assert_eq!(after_bar, " ".repeat(9) + &"^".repeat(12), "{caret_line:?}");
    }

    #[test]
    fn json_is_one_object_per_line_and_escaped() {
        let mut vs = sample();
        vs[0].message = "quote \" backslash \\ tab\t".into();
        let text = render_json(&vs);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("]\n"));
        let object_lines: Vec<&str> = text.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(object_lines.len(), 2);
        assert!(object_lines[0].ends_with("},"), "{:?}", object_lines[0]);
        assert!(object_lines[1].ends_with('}'), "{:?}", object_lines[1]);
        assert!(text.contains(r#""path":"crates/a.rs","line":3,"col":15"#));
        assert!(text.contains(r#"quote \" backslash \\ tab\t"#));
        // Sorted: a.rs first.
        assert!(object_lines[0].contains("a.rs"));
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[\n]\n");
    }
}
