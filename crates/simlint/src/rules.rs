//! The rule engine: determinism rules D1–D6 and safety rules S1–S2,
//! applied to one lexed source file at a time (D6, the cross-file
//! snapshot-drift rule, lives in [`crate::drift`] and runs at the
//! workspace level).
//!
//! | code | slug               | what it catches                                  |
//! |------|--------------------|--------------------------------------------------|
//! | D1   | `hash-iteration`   | iterating `HashMap`/`HashSet` state (lookups OK) |
//! | D2   | `wall-clock`       | `Instant::now` / `SystemTime` reads              |
//! | D3   | `entropy-rng`      | entropy-seeded RNGs (`from_entropy`, …)          |
//! | D4   | `float-order`      | float accumulation over partition-ordered data   |
//! | D5   | `determinism-taint`| nondeterministic values flowing into sim state   |
//! | D6   | `snapshot-drift`   | struct fields missing from the snapshot codec    |
//! | S1   | `unwrap-audit`     | `.unwrap()`, `.expect("")`, `panic!`             |
//! | S2   | `cast-lossy`       | narrowing `as` casts in hot-path crates          |
//! |      | `malformed-suppression` | broken `simlint: allow(..)` directives      |
//!
//! Detection is token-pattern based (no type inference), so D1 works
//! from *declarations*: any identifier declared in the file with a
//! `HashMap`/`HashSet` type (or initialized from one) is tracked, and
//! iterator-producing calls on it — `.iter()`, `.keys()`, `.values()`,
//! `.drain()`, `.retain()`, `for _ in &x` — are flagged. `#[cfg(test)]`
//! modules and `#[test]` functions are exempt: test code never runs
//! inside the simulation, and timing/ordering quirks there cannot break
//! bit-identical parallel runs.
//!
//! D4 and D5 are *scope-aware*: they walk the item tree produced by
//! [`crate::parser`] and analyze each non-test `fn` body. D5 runs a
//! small intra-procedural taint pass — identifiers bound from
//! wall-clock / entropy / hash-iteration / pointer-cast expressions are
//! marked, the marks propagate through `let` bindings and assignments
//! to a fixpoint, and a violation fires only where a tainted value
//! reaches a simulation-state sink (event times, seeds, emitted
//! payloads, snapshot writes).
//!
//! Suppression: `// simlint: allow(<slug>[, <slug>…]) -- <reason>` on
//! the violating line or the line directly above it;
//! `// simlint: allow-file(<slug>) -- <reason>` anywhere in the file
//! for file-wide exemptions. The `-- <reason>` part is mandatory — an
//! allow without a written justification is itself a violation.

use crate::config::{Config, Severity};
use crate::lexer::{lex, num_literal_is_float, str_literal_is_empty, Comment, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// The lint rules. Codes D1–D6 guard determinism, S1–S2 guard safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashIteration,
    WallClock,
    EntropyRng,
    FloatOrder,
    DeterminismTaint,
    SnapshotDrift,
    UnwrapAudit,
    CastLossy,
    MalformedSuppression,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::HashIteration,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::FloatOrder,
        Rule::DeterminismTaint,
        Rule::SnapshotDrift,
        Rule::UnwrapAudit,
        Rule::CastLossy,
        Rule::MalformedSuppression,
    ];

    /// Short code used in reports (`D1` … `S2`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashIteration => "D1",
            Rule::WallClock => "D2",
            Rule::EntropyRng => "D3",
            Rule::FloatOrder => "D4",
            Rule::DeterminismTaint => "D5",
            Rule::SnapshotDrift => "D6",
            Rule::UnwrapAudit => "S1",
            Rule::CastLossy => "S2",
            Rule::MalformedSuppression => "SUP",
        }
    }

    /// Stable identifier used in config, suppressions, and baselines.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::WallClock => "wall-clock",
            Rule::EntropyRng => "entropy-rng",
            Rule::FloatOrder => "float-order",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::SnapshotDrift => "snapshot-drift",
            Rule::UnwrapAudit => "unwrap-audit",
            Rule::CastLossy => "cast-lossy",
            Rule::MalformedSuppression => "malformed-suppression",
        }
    }

    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.slug() == slug)
    }

    /// One-line rationale shown next to each finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "iteration order of HashMap/HashSet varies across runs; iterate a \
                 BTreeMap/BTreeSet or an explicitly sorted Vec instead (lookups are fine)"
            }
            Rule::WallClock => {
                "wall-clock reads make runs irreproducible; use virtual SimTime, or move \
                 the measurement into the bench crate"
            }
            Rule::EntropyRng => {
                "entropy-seeded RNGs break replay; seed explicitly (ChaCha8Rng::seed_from_u64)"
            }
            Rule::FloatOrder => {
                "float addition is not associative: accumulating across partitions/workers in \
                 arrival order gives different bits per schedule; reduce in a fixed index order"
            }
            Rule::DeterminismTaint => {
                "a nondeterministic value reaches simulation state here; derive event times, \
                 seeds, and emitted payloads from simulated state only"
            }
            Rule::SnapshotDrift => {
                "field is not handled by the snapshot codec; update both the put_* and get_* \
                 paths in crates/snapshot/src/codec.rs (and bump the container version)"
            }
            Rule::UnwrapAudit => {
                "use expect(\"why this cannot fail\") or propagate a MassfError instead"
            }
            Rule::CastLossy => {
                "narrowing `as` cast silently truncates; justify with an allow comment or \
                 use try_into with an expect"
            }
            Rule::MalformedSuppression => {
                "write `simlint: allow(<rule>) -- <reason>` with a known rule and a reason"
            }
        }
    }

    /// Long-form rationale for `simlint --explain <rule>`: what the rule
    /// detects, why it matters for bit-identical simulation, and how to
    /// fix or justify a finding.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "D1 hash-iteration\n\
                 \n\
                 Iterating a std HashMap/HashSet visits entries in hasher order, which\n\
                 depends on the per-process RandomState seed — two runs of the same\n\
                 binary see different orders. Any simulation decision derived from that\n\
                 order (event emission, tie-breaking, aggregation) diverges between\n\
                 runs and between partition counts, breaking the repeatability the\n\
                 conservative executor guarantees.\n\
                 \n\
                 Detection: identifiers declared or initialized with a HashMap/HashSet\n\
                 type are tracked per file; iterator-producing calls on them (.iter,\n\
                 .keys, .values, .drain, .retain, for … in) are flagged. Point lookups\n\
                 (get, contains_key, insert) are fine.\n\
                 \n\
                 Fix: iterate a BTreeMap/BTreeSet, or collect and sort before use. If\n\
                 order provably cannot escape (e.g. counting), justify with\n\
                 `// simlint: allow(hash-iteration) -- <why order cannot matter>`."
            }
            Rule::WallClock => {
                "D2 wall-clock\n\
                 \n\
                 Instant::now(), SystemTime, and UNIX_EPOCH read host time. Any value\n\
                 derived from them differs across runs and machines, so it must never\n\
                 feed simulated state. Simulated time is virtual (SimTime) and advances\n\
                 only through the event loop.\n\
                 \n\
                 Fix: use SimTime from the event being processed. Host-time measurement\n\
                 belongs in the bench crate (exempt by scope) or behind an allow with a\n\
                 reason explaining why the reading cannot reach simulation state."
            }
            Rule::EntropyRng => {
                "D3 entropy-rng\n\
                 \n\
                 from_entropy, thread_rng, OsRng, and getrandom seed randomness from the\n\
                 OS. Workload generation or tie-breaking seeded that way is different\n\
                 every run, defeating replay and divergence debugging.\n\
                 \n\
                 Fix: seed explicitly from configuration (ChaCha8Rng::seed_from_u64) so\n\
                 the whole run is a pure function of the scenario."
            }
            Rule::FloatOrder => {
                "D4 float-order\n\
                 \n\
                 Floating-point addition is not associative: (a+b)+c != a+(b+c) in the\n\
                 last bits. Summing values that arrive in partition, worker, thread, or\n\
                 outbox order therefore produces schedule-dependent results even when\n\
                 every addend is identical — the classic way 'bit-identical at any\n\
                 thread count' silently degrades to 'close enough'.\n\
                 \n\
                 Detection (scope-aware, non-test fn bodies in deterministic-critical\n\
                 crates): float accumulation — .sum::<f32|f64>(), .fold(<float init>, …)\n\
                 (max/min folds are order-safe and skipped), or `x += / *=` on a\n\
                 float-typed local inside a loop — where the data source names\n\
                 partition-shaped state (partition, shard, outbox, worker, thread,\n\
                 parallel, barrier, par_iter).\n\
                 \n\
                 Fix: reduce in a fixed index order (iterate 0..n over a slab), or sum\n\
                 per-partition locally and combine the per-partition results in\n\
                 partition-id order. Integer accumulation is always safe."
            }
            Rule::DeterminismTaint => {
                "D5 determinism-taint\n\
                 \n\
                 D1–D3 flag nondeterministic *reads* at the site of the read. D5 tracks\n\
                 the value afterwards: within each fn body, identifiers bound from\n\
                 wall-clock / entropy / hash-iteration / pointer-address expressions\n\
                 — including measured barrier waits (barrier_wait_us,\n\
                 total_barrier_wait_us), which are wall-clock readings even though\n\
                 they sit in ExecutionStats next to deterministic counters —\n\
                 are tainted, taint propagates through let bindings and (compound)\n\
                 assignments to a fixpoint, and a violation fires only where a tainted\n\
                 value reaches a simulation-state sink: SimTime constructors (from_ns,\n\
                 from_ms_f64, …), RNG seeding (seed_from_u64, from_seed), event\n\
                 emission (emit, schedule, send_datagram, start_flow), snapshot writes\n\
                 (put_u64, …), or assignment into .time / .seed fields.\n\
                 \n\
                 This catches laundered nondeterminism: `let t = queue_ptr as usize;\n\
                 … emit(SimTime::from_ns(t as u64), …)` fires at the emit, naming the\n\
                 original source line.\n\
                 \n\
                 Fix: derive the value from simulated state; if the flow is provably\n\
                 benign (e.g. logging only), justify with\n\
                 `// simlint: allow(determinism-taint) -- <why>` at the sink."
            }
            Rule::SnapshotDrift => {
                "D6 snapshot-drift\n\
                 \n\
                 The snapshot container (crates/snapshot) round-trips world state\n\
                 through a hand-written codec. Adding a field to a serialized struct\n\
                 without touching the codec compiles cleanly and round-trips silently —\n\
                 the field is simply dropped on restore, and restore-equals-\n\
                 straight-through dies long after the commit that caused it.\n\
                 \n\
                 Detection (cross-file): the struct definition of every type the codec\n\
                 serializes (configured under [rule.snapshot-drift], discovered from\n\
                 put_*/get_* signatures in the codec file) is parsed, and each field\n\
                 must be mentioned in BOTH the encode and decode paths of the codec.\n\
                 A field missing from either side is reported at its declaration.\n\
                 \n\
                 Fix: extend the matching put_* and get_* functions (and the container\n\
                 version if the layout changed). Fields that are deliberately not\n\
                 serialized (caches, scratch space) get an allow on the field line:\n\
                 `// simlint: allow(snapshot-drift) -- rebuilt on restore`."
            }
            Rule::UnwrapAudit => {
                "S1 unwrap-audit\n\
                 \n\
                 .unwrap() and .expect(\"\") panic without telling the operator what\n\
                 invariant broke. In a long-running simulation serving live queries, an\n\
                 unexplained panic is an outage with no diagnosis.\n\
                 \n\
                 Fix: expect(\"<why this cannot fail>\") for true invariants; propagate\n\
                 a structured MassfError otherwise."
            }
            Rule::CastLossy => {
                "S2 cast-lossy\n\
                 \n\
                 `as` casts to narrower types (u32, u16, i32, f32, …) silently truncate\n\
                 or round. In hot-path crates where indices legitimately exceed u32 at\n\
                 the million-host scale, a silent wrap corrupts state instead of\n\
                 failing.\n\
                 \n\
                 Fix: use try_into with an expect naming the bound, or justify the cast\n\
                 with an allow comment stating why the value fits."
            }
            Rule::MalformedSuppression => {
                "SUP malformed-suppression\n\
                 \n\
                 Suppressions are part of the audit trail: every allow must name a\n\
                 known rule and carry a `-- <reason>` justification. A directive that\n\
                 parses wrong would otherwise silently suppress nothing (or the wrong\n\
                 thing), so broken directives are themselves findings.\n\
                 \n\
                 Grammar: `// simlint: allow(<slug>[, <slug>…]) -- <reason>` on the\n\
                 violating line or the line above; `// simlint: allow-file(<slug>) --\n\
                 <reason>` anywhere for file-wide exemptions."
            }
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column in the original (untrimmed) line.
    pub col: u32,
    /// 0-based caret offset within `snippet` (leading whitespace of the
    /// original line already subtracted).
    pub caret: u32,
    /// Underline length in characters, ≥ 1.
    pub len: u32,
    /// The trimmed source line (baseline matching key).
    pub snippet: String,
    pub message: String,
    pub severity: Severity,
}

impl Violation {
    /// Build a violation with the caret fields derived from `col`, the
    /// underlined token `len`, and the original source line.
    #[allow(clippy::too_many_arguments)] // positional mirror of the report columns
    pub fn at(
        rule: Rule,
        path: &str,
        line: u32,
        col: u32,
        len: u32,
        raw_line: &str,
        message: String,
        severity: Severity,
    ) -> Violation {
        let snippet = raw_line.trim().replace('\t', " ");
        let lead = (raw_line.len() - raw_line.trim_start().len()) as u32;
        let caret = col
            .saturating_sub(1)
            .saturating_sub(lead)
            .min(snippet.chars().count() as u32);
        let len = len.max(1).min(
            (snippet.chars().count() as u32)
                .saturating_sub(caret)
                .max(1),
        );
        Violation {
            rule,
            path: path.to_string(),
            line,
            col,
            caret,
            len,
            snippet,
            message,
            severity,
        }
    }
}

/// Iterator-producing methods that make D1 fire when called on a
/// hash-typed identifier.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Unordered collection type names whose declarations D1 tracks.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Identifiers whose mere presence means an entropy-seeded RNG (D3).
const ENTROPY_IDENTS: [&str; 4] = ["from_entropy", "thread_rng", "OsRng", "getrandom"];

/// Narrowing cast targets flagged by S2 (on 64-bit hosts the working
/// types are u64/usize/f64; these targets all lose range or precision).
const NARROW_TYPES: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Scan one file's source. `path` is the workspace-relative path used
/// in reports; `krate` the crate name used for rule scoping.
pub fn scan_source(path: &str, krate: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let (toks, comments) = lex(src);
    let lines: Vec<&str> = src.lines().collect();

    let in_test = test_regions(&toks);
    let sup = parse_suppressions(&comments);
    let hash_idents = collect_hash_idents(&toks);

    let mut out: Vec<Violation> = Vec::new();
    let mut push = |rule: Rule, line: u32, col: u32, len: u32, message: String| {
        if !cfg.applies(rule, krate) {
            return;
        }
        if rule != Rule::MalformedSuppression && sup.allows(rule, line) {
            return;
        }
        let raw = lines.get(line as usize - 1).copied().unwrap_or("");
        out.push(Violation::at(
            rule,
            path,
            line,
            col,
            len,
            raw,
            message,
            cfg.rule(rule).severity,
        ));
    };

    for (line, why) in &sup.malformed {
        push(Rule::MalformedSuppression, *line, 1, u32::MAX, why.clone());
    }

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let ident = |j: usize| -> Option<&str> {
            toks.get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
        };
        let punct = |j: usize, c: char| toks.get(j).is_some_and(|t| t.text == c.to_string());

        // D1: `<hash>.iter()` and friends.
        if t.kind == TokKind::Ident && hash_idents.contains(t.text.as_str()) && punct(i + 1, '.') {
            if let Some(m) = ident(i + 2) {
                if ITER_METHODS.contains(&m) {
                    push(
                        Rule::HashIteration,
                        toks[i + 2].line,
                        toks[i + 2].col,
                        toks[i + 2].text.len() as u32,
                        format!("`{}.{m}()` iterates an unordered collection", t.text),
                    );
                }
            }
        }
        // D1: `<hash>[idx].iter()` — per-element maps (`Vec<HashMap<…>>`)
        // are indexed before the call; walk over the `[…]` to the method.
        if t.kind == TokKind::Ident && hash_idents.contains(t.text.as_str()) && punct(i + 1, '[') {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(b) = toks.get(j) {
                match b.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j - i > 24 {
                    break; // pathological index expression; give up
                }
                j += 1;
            }
            if depth == 0 && punct(j + 1, '.') {
                if let Some(m) = ident(j + 2) {
                    if ITER_METHODS.contains(&m) {
                        push(
                            Rule::HashIteration,
                            toks[j + 2].line,
                            toks[j + 2].col,
                            toks[j + 2].text.len() as u32,
                            format!("`{}[…].{m}()` iterates an unordered collection", t.text),
                        );
                    }
                }
            }
        }
        // D1: `for pat in [&[mut]] <hash> {`.
        if t.kind == TokKind::Ident && t.text == "for" {
            if let Some((name, line, col)) = for_loop_over_ident(&toks, i) {
                if hash_idents.contains(name.as_str()) {
                    push(
                        Rule::HashIteration,
                        line,
                        col,
                        name.len() as u32,
                        format!("`for … in {name}` iterates an unordered collection"),
                    );
                }
            }
        }
        // D2: Instant::now, SystemTime, UNIX_EPOCH.
        if t.kind == TokKind::Ident {
            if t.text == "Instant"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("now")
            {
                push(
                    Rule::WallClock,
                    t.line,
                    t.col,
                    "Instant::now".len() as u32,
                    "`Instant::now()` wall-clock read".to_string(),
                );
            }
            if t.text == "SystemTime" || t.text == "UNIX_EPOCH" {
                push(
                    Rule::WallClock,
                    t.line,
                    t.col,
                    t.text.len() as u32,
                    format!("`{}` wall-clock read", t.text),
                );
            }
        }
        // D3: entropy-seeded RNG.
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            push(
                Rule::EntropyRng,
                t.line,
                t.col,
                t.text.len() as u32,
                format!("`{}` draws seed material from OS entropy", t.text),
            );
        }
        // S1: `.unwrap()`, `.expect("")`, `panic!`.
        if t.text == "." && toks.get(i).is_some_and(|t| t.kind == TokKind::Punct) {
            if ident(i + 1) == Some("unwrap") && punct(i + 2, '(') && punct(i + 3, ')') {
                push(
                    Rule::UnwrapAudit,
                    toks[i + 1].line,
                    toks[i + 1].col,
                    "unwrap".len() as u32,
                    "`.unwrap()` panics without a message".to_string(),
                );
            }
            if ident(i + 1) == Some("expect")
                && punct(i + 2, '(')
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokKind::Str && str_literal_is_empty(&t.text))
            {
                push(
                    Rule::UnwrapAudit,
                    toks[i + 1].line,
                    toks[i + 1].col,
                    "expect".len() as u32,
                    "`.expect(\"\")` carries no justification".to_string(),
                );
            }
        }
        if t.kind == TokKind::Ident && t.text == "panic" && punct(i + 1, '!') {
            push(
                Rule::UnwrapAudit,
                t.line,
                t.col,
                "panic!".len() as u32,
                "`panic!` in non-test code".to_string(),
            );
        }
        // S2: narrowing `as` cast.
        if t.kind == TokKind::Ident && t.text == "as" {
            if let Some(target) = ident(i + 1) {
                if NARROW_TYPES.contains(&target) {
                    let tgt = &toks[i + 1];
                    let len = if tgt.line == t.line {
                        tgt.col + tgt.text.len() as u32 - t.col
                    } else {
                        2
                    };
                    push(
                        Rule::CastLossy,
                        t.line,
                        t.col,
                        len,
                        format!("narrowing cast `as {target}`"),
                    );
                }
            }
        }
    }

    // D4 / D5: scope-aware passes over each non-test fn body.
    let items = crate::parser::parse(&toks);
    for item in crate::parser::flatten(&items) {
        if item.kind != crate::parser::ItemKind::Fn || item.is_test {
            continue;
        }
        let Some((open, close)) = item.body else {
            continue;
        };
        scan_float_order(&toks, open, close + 1, &mut push);
        scan_taint(&toks, open, close + 1, &hash_idents, &mut push);
    }

    out.retain(|v| v.severity != Severity::Off);
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out.dedup();
    out
}

/// Identifier fragments that mark data as partition-shaped: values
/// keyed or produced per partition/worker/thread, whose arrival order
/// is a function of the parallel schedule.
const PARTITION_HINTS: [&str; 10] = [
    "partition",
    "shard",
    "outbox",
    "worker",
    "thread",
    "parallel",
    "barrier",
    "par_iter",
    "par_chunks",
    "rayon",
];

fn is_partition_hint(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    PARTITION_HINTS.iter().any(|h| lower.contains(h))
}

/// Walk backwards from token `i` to the start of the receiver chain
/// (statement boundary) and return the first partition-hinted
/// identifier found, if any.
fn chain_hint_before(toks: &[Tok], mut i: usize, lo: usize) -> Option<String> {
    let mut steps = 0;
    while i > lo {
        i -= 1;
        let t = &toks[i];
        if t.text == ";"
            || t.text == "{"
            || t.text == "}"
            || (t.kind == TokKind::Ident && (t.text == "let" || t.text == "for" || t.text == "in"))
        {
            return None;
        }
        if t.kind == TokKind::Ident && is_partition_hint(&t.text) {
            return Some(t.text.clone());
        }
        steps += 1;
        if steps > 48 {
            return None;
        }
    }
    None
}

/// Index just past the `)` matching the `(` at `open` (or `hi`).
fn match_paren(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < hi {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Index just past the `}` matching the `{` at `open` (or `hi`).
fn match_brace_tok(toks: &[Tok], open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < hi {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Float-typed locals of a fn body: `let [mut] x: f32/f64 …` or
/// `let [mut] x = <float literal>…`.
fn collect_float_locals(toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    let mut i = lo;
    while i < hi {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name.text.clone();
        let mut k = j + 1;
        let mut is_float = false;
        if toks.get(k).is_some_and(|t| t.text == ":") {
            // Type annotation up to `=` or `;`.
            while k < hi && toks[k].text != "=" && toks[k].text != ";" {
                if toks[k].kind == TokKind::Ident
                    && (toks[k].text == "f32" || toks[k].text == "f64")
                {
                    is_float = true;
                }
                k += 1;
            }
        }
        if !is_float && toks.get(k).is_some_and(|t| t.text == "=") {
            // First few initializer tokens: a float literal or an
            // explicit f32/f64 path (`f64::NEG_INFINITY`, `0.0f64`).
            for t in toks.iter().take((k + 6).min(hi)).skip(k + 1) {
                if (t.kind == TokKind::Num && num_literal_is_float(&t.text))
                    || (t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
                {
                    is_float = true;
                    break;
                }
                if t.text == ";" {
                    break;
                }
            }
        }
        if is_float {
            set.insert(name);
        }
        i = j + 1;
    }
    set
}

/// D4 float-order: float accumulation whose input order depends on the
/// parallel schedule. Scans one fn body `[lo, hi)`.
fn scan_float_order(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    push: &mut impl FnMut(Rule, u32, u32, u32, String),
) {
    let float_locals = collect_float_locals(toks, lo, hi);
    let ident = |j: usize| -> Option<&str> {
        toks.get(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };
    for i in lo..hi {
        let t = &toks[i];
        // (a) `.sum::<f32|f64>()` on a partition-hinted chain.
        if t.text == "."
            && ident(i + 1) == Some("sum")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks.get(i + 3).is_some_and(|t| t.text == ":")
            && toks.get(i + 4).is_some_and(|t| t.text == "<")
        {
            if let Some(fty) = ident(i + 5).filter(|f| *f == "f32" || *f == "f64") {
                if let Some(hint) = chain_hint_before(toks, i, lo) {
                    let s = &toks[i + 1];
                    push(
                        Rule::FloatOrder,
                        s.line,
                        s.col,
                        3,
                        format!(
                            "`.sum::<{fty}>()` over partition-ordered data (`{hint}`): \
                             float accumulation order depends on the schedule"
                        ),
                    );
                }
            }
        }
        // (b) `.fold(<float init>, op)` on a hinted chain, unless the op
        // is an order-safe max/min reduction.
        if t.text == "."
            && ident(i + 1) == Some("fold")
            && toks.get(i + 2).is_some_and(|t| t.text == "(")
        {
            let end = match_paren(toks, i + 2, hi);
            // First argument: up to the top-level comma.
            let mut depth = 0i32;
            let mut comma = end;
            for (j, a) in toks.iter().enumerate().take(end).skip(i + 3) {
                match a.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        comma = j;
                        break;
                    }
                    _ => {}
                }
            }
            let init_is_float = toks[i + 3..comma.min(hi)].iter().any(|a| {
                (a.kind == TokKind::Num && num_literal_is_float(&a.text))
                    || (a.kind == TokKind::Ident && (a.text == "f32" || a.text == "f64"))
            });
            let op_is_order_safe = toks[comma.min(hi)..end].iter().any(|a| {
                a.kind == TokKind::Ident
                    && (a.text == "max"
                        || a.text == "min"
                        || a.text == "maximum"
                        || a.text == "minimum")
            });
            if init_is_float && !op_is_order_safe {
                if let Some(hint) = chain_hint_before(toks, i, lo) {
                    let s = &toks[i + 1];
                    push(
                        Rule::FloatOrder,
                        s.line,
                        s.col,
                        4,
                        format!(
                            "float `.fold(…)` over partition-ordered data (`{hint}`): \
                             accumulation order depends on the schedule"
                        ),
                    );
                }
            }
        }
        // (c) `x += …` / `x *= …` on a float local inside a loop whose
        // source is partition-hinted.
        if t.kind == TokKind::Ident && t.text == "for" {
            let Some(body_open) = (i..hi).find(|&j| toks[j].text == "{") else {
                continue;
            };
            // Hint search in the loop-source expression (after `in`).
            let in_pos =
                (i..body_open).find(|&j| toks[j].kind == TokKind::Ident && toks[j].text == "in");
            let Some(in_pos) = in_pos else { continue };
            // `for i in 0..n` iterates in index order regardless of what
            // `n` is named — ranges are never schedule-ordered.
            let is_range = (in_pos + 1..body_open.saturating_sub(1))
                .any(|j| toks[j].text == "." && toks[j + 1].text == ".");
            if is_range {
                continue;
            }
            let hint = toks[in_pos + 1..body_open]
                .iter()
                .find(|a| a.kind == TokKind::Ident && is_partition_hint(&a.text))
                .map(|a| a.text.clone());
            let Some(hint) = hint else { continue };
            let body_end = match_brace_tok(toks, body_open, hi);
            for j in body_open..body_end.saturating_sub(2) {
                let a = &toks[j];
                if a.kind == TokKind::Ident
                    && float_locals.contains(a.text.as_str())
                    && (toks[j + 1].text == "+" || toks[j + 1].text == "*")
                    && toks[j + 2].text == "="
                {
                    let op = if toks[j + 1].text == "+" { "+=" } else { "*=" };
                    push(
                        Rule::FloatOrder,
                        a.line,
                        a.col,
                        a.text.len() as u32,
                        format!(
                            "float `{} {op} …` accumulates in `{hint}` iteration order: \
                             result depends on the parallel schedule",
                            a.text
                        ),
                    );
                }
            }
        }
    }
}

/// Nondeterminism sources D5 tracks by bare identifier.
const TAINT_SOURCE_IDENTS: [(&str, &str); 10] = [
    ("SystemTime", "wall clock"),
    ("UNIX_EPOCH", "wall clock"),
    ("elapsed", "wall clock"),
    ("from_entropy", "OS entropy"),
    ("thread_rng", "OS entropy"),
    ("OsRng", "OS entropy"),
    ("getrandom", "OS entropy"),
    ("addr_of", "pointer address"),
    // Measured barrier-wait times are wall-clock quantities even though
    // they live in ExecutionStats next to deterministic counters: they
    // vary with host load and thread scheduling. Feeding them back into
    // the simulation (e.g. as a rebalance signal) breaks bit-identity.
    ("barrier_wait_us", "measured barrier wait (wall clock)"),
    (
        "total_barrier_wait_us",
        "measured barrier wait (wall clock)",
    ),
];

/// Simulation-state sinks: a tainted value passed to one of these calls
/// (or assigned into a `.time` / `.seed` field) is a violation.
const TAINT_SINK_FNS: [&str; 19] = [
    "from_ns",
    "from_us",
    "from_ms",
    "from_secs",
    "from_ms_f64",
    "from_secs_f64",
    "seed_from_u64",
    "from_seed",
    "emit",
    "emit_to",
    "schedule",
    "schedule_at",
    "send_datagram",
    "start_flow",
    "put_u8",
    "put_u16",
    "put_u32",
    "put_u64",
    "put_f64",
];

const TAINT_SINK_FIELDS: [&str; 2] = ["time", "seed"];

/// A nondeterminism source found in `[lo, hi)`:
/// `(description, line, col)`.
fn find_taint_source(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    hash_idents: &BTreeSet<String>,
    tainted: &BTreeMap<String, (String, u32)>,
) -> Option<(String, u32)> {
    for j in lo..hi.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, what)) = TAINT_SOURCE_IDENTS.iter().find(|(n, _)| *n == t.text) {
            return Some((format!("`{}` ({what})", t.text), t.line));
        }
        if t.text == "Instant"
            && toks.get(j + 1).is_some_and(|a| a.text == ":")
            && toks.get(j + 2).is_some_and(|a| a.text == ":")
            && toks.get(j + 3).is_some_and(|a| a.text == "now")
        {
            return Some(("`Instant::now()` (wall clock)".to_string(), t.line));
        }
        if t.text == "as_ptr" || (t.text == "as" && toks.get(j + 1).is_some_and(|a| a.text == "*"))
        {
            return Some(("pointer address".to_string(), t.line));
        }
        if hash_idents.contains(t.text.as_str())
            && toks.get(j + 1).is_some_and(|a| a.text == ".")
            && toks
                .get(j + 2)
                .is_some_and(|a| ITER_METHODS.contains(&a.text.as_str()))
        {
            return Some((format!("`{}` iteration (hash order)", t.text), t.line));
        }
        if let Some((desc, line)) = tainted.get(t.text.as_str()) {
            return Some((desc.clone(), *line));
        }
    }
    None
}

/// D5 determinism-taint: intra-procedural dataflow over one fn body
/// `[lo, hi)`. Tainted identifiers map to `(source description, source
/// line)` so the violation at the sink can name the origin.
fn scan_taint(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    hash_idents: &BTreeSet<String>,
    push: &mut impl FnMut(Rule, u32, u32, u32, String),
) {
    // Collect assignment records once: (target ident, rhs range).
    struct Assign {
        name: String,
        rhs: (usize, usize),
    }
    let mut assigns: Vec<Assign> = Vec::new();
    let mut tainted: BTreeMap<String, (String, u32)> = BTreeMap::new();

    let rhs_end = |start: usize| -> usize {
        let mut depth = 0i32;
        let mut j = start;
        while j < hi {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        hi
    };

    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        // `let [mut] name [: ty] = rhs ;`
        if t.kind == TokKind::Ident && t.text == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|a| a.text == "mut") {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|a| a.kind == TokKind::Ident) {
                let name = name.text.clone();
                let mut k = j + 1;
                while k < hi && toks[k].text != "=" && toks[k].text != ";" {
                    k += 1;
                }
                if k < hi && toks[k].text == "=" {
                    assigns.push(Assign {
                        name,
                        rhs: (k + 1, rhs_end(k + 1)),
                    });
                }
            }
            i += 1;
            continue;
        }
        // `name = rhs` / `name += rhs` (not `==`, not `.field =`).
        if t.kind == TokKind::Ident
            && (i == lo || (toks[i - 1].text != "." && toks[i - 1].text != ":"))
        {
            let eq_at = if toks.get(i + 1).is_some_and(|a| a.text == "=") {
                i + 1
            } else if toks
                .get(i + 1)
                .is_some_and(|a| matches!(a.text.as_str(), "+" | "-" | "*" | "/" | "%" | "^" | "|"))
                && toks.get(i + 2).is_some_and(|a| a.text == "=")
            {
                i + 2
            } else {
                0
            };
            // Exclude `==` and `=>` (match arms).
            if eq_at != 0
                && toks
                    .get(eq_at + 1)
                    .is_none_or(|a| a.text != "=" && a.text != ">")
            {
                assigns.push(Assign {
                    name: t.text.clone(),
                    rhs: (eq_at + 1, rhs_end(eq_at + 1)),
                });
            }
        }
        // `for pat in <source>` where source involves a hash collection:
        // the pattern bindings inherit hash-order taint.
        if t.kind == TokKind::Ident && t.text == "for" {
            if let Some(body_open) = (i..hi.min(i + 40)).find(|&j| toks[j].text == "{") {
                if let Some(in_pos) =
                    (i..body_open).find(|&j| toks[j].kind == TokKind::Ident && toks[j].text == "in")
                {
                    let src_has_hash = toks[in_pos + 1..body_open].iter().find(|a| {
                        a.kind == TokKind::Ident && hash_idents.contains(a.text.as_str())
                    });
                    if let Some(h) = src_has_hash {
                        let desc = format!("`{}` iteration (hash order)", h.text);
                        for p in &toks[i + 1..in_pos] {
                            if p.kind == TokKind::Ident && p.text != "mut" && p.text != "ref" {
                                tainted
                                    .entry(p.text.clone())
                                    .or_insert_with(|| (desc.clone(), t.line));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }

    // Propagate to a fixpoint (bounded: each pass can only add names).
    for _ in 0..8 {
        let mut changed = false;
        for a in &assigns {
            if tainted.contains_key(&a.name) {
                continue;
            }
            if let Some(src) = find_taint_source(toks, a.rhs.0, a.rhs.1, hash_idents, &tainted) {
                tainted.insert(a.name.clone(), src);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Sinks: calls with a tainted (or directly nondeterministic)
    // argument, and assignments into `.time` / `.seed` fields.
    for j in lo..hi {
        let t = &toks[j];
        if t.kind == TokKind::Ident
            && TAINT_SINK_FNS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|a| a.text == "(")
            && toks.get(j.wrapping_sub(1)).is_none_or(|a| a.text != "fn")
        {
            let end = match_paren(toks, j + 1, hi);
            if let Some((desc, line)) =
                find_taint_source(toks, j + 2, end.saturating_sub(1), hash_idents, &tainted)
            {
                push(
                    Rule::DeterminismTaint,
                    t.line,
                    t.col,
                    t.text.len() as u32,
                    format!(
                        "nondeterministic value from {desc} at line {line} flows into `{}(…)`",
                        t.text
                    ),
                );
            }
        }
        if t.text == "."
            && toks.get(j + 1).is_some_and(|a| {
                a.kind == TokKind::Ident && TAINT_SINK_FIELDS.contains(&a.text.as_str())
            })
            && toks.get(j + 2).is_some_and(|a| a.text == "=")
            && toks.get(j + 3).is_none_or(|a| a.text != "=")
        {
            let f = &toks[j + 1];
            let mut k = j + 3;
            let mut depth = 0i32;
            let end = loop {
                if k >= hi {
                    break hi;
                }
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break k,
                    _ => {}
                }
                k += 1;
            };
            if let Some((desc, line)) = find_taint_source(toks, j + 3, end, hash_idents, &tainted) {
                push(
                    Rule::DeterminismTaint,
                    f.line,
                    f.col,
                    f.text.len() as u32,
                    format!(
                        "nondeterministic value from {desc} at line {line} assigned into `.{}`",
                        f.text
                    ),
                );
            }
        }
    }
}

/// For a `for` keyword at token `i`, return the loop source if it is a
/// bare identifier (optionally `&`/`&mut`-prefixed): the tokens between
/// `in` and the loop body `{`. Returns `(name, line, col)` of the final
/// path segment naming the collection.
fn for_loop_over_ident(toks: &[Tok], i: usize) -> Option<(String, u32, u32)> {
    // Find `in` before the body opens; the pattern cannot contain `in`.
    let mut j = i + 1;
    let mut guard = 0;
    while j < toks.len() && !(toks[j].kind == TokKind::Ident && toks[j].text == "in") {
        if toks[j].text == "{" || toks[j].text == ";" {
            return None; // not a for-loop shape we understand
        }
        j += 1;
        guard += 1;
        if guard > 64 {
            return None;
        }
    }
    // Collect expression tokens until the body `{`.
    let mut expr: Vec<&Tok> = Vec::new();
    let mut k = j + 1;
    while k < toks.len() && toks[k].text != "{" {
        expr.push(&toks[k]);
        k += 1;
        if expr.len() > 8 {
            return None; // complex expression: handled by method rules
        }
    }
    // Accept `x` and dotted paths `a.b.x`, with optional `&`/`&mut`:
    // the *last* segment names the collection being iterated.
    let names: Vec<&&Tok> = expr
        .iter()
        .filter(|t| !(t.text == "&" || t.text == "mut"))
        .collect();
    let mut expect_ident = true;
    for t in &names {
        let ok = if expect_ident {
            t.kind == TokKind::Ident
        } else {
            t.text == "."
        };
        if !ok {
            return None;
        }
        expect_ident = !expect_ident;
    }
    match names.last() {
        Some(last) if !expect_ident => Some((last.text.clone(), last.line, last.col)),
        _ => None,
    }
}

/// Mark tokens inside `#[cfg(test)]` items and `#[test]` functions.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t => attr.push(t),
                }
                j += 1;
            }
            let is_test_attr = matches!(attr.as_slice(), ["test"])
                || (attr.first() == Some(&"cfg")
                    && attr.contains(&"test")
                    && !attr.contains(&"not"));
            if is_test_attr {
                // Skip further attributes, then mark to the end of the
                // annotated item (its brace-balanced body, or `;`).
                let mut k = j;
                while k < toks.len()
                    && toks[k].text == "#"
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let mut d = 0usize;
                    loop {
                        match toks.get(k).map(|t| t.text.as_str()) {
                            Some("[") => d += 1,
                            Some("]") => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            None => break,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let body_start = k;
                let mut brace = 0usize;
                let mut opened = false;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            brace += 1;
                            opened = true;
                        }
                        "}" => {
                            brace = brace.saturating_sub(1);
                        }
                        ";" if !opened => break, // e.g. `#[cfg(test)] use …;`
                        _ => {}
                    }
                    k += 1;
                    if opened && brace == 0 {
                        break;
                    }
                }
                for flag in in_test.iter_mut().take(k).skip(body_start.min(i)) {
                    *flag = true;
                }
                // Also cover the attribute itself.
                for flag in in_test.iter_mut().take(j).skip(i) {
                    *flag = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Identifiers declared (or initialized) with a hash-collection type
/// anywhere in the file: `name: …HashMap<…>…`, `name = HashMap::…`.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = &toks[i].text;
        // `name = [path::]HashMap::new()` / `HashSet::with_capacity(…)`:
        // walk the path after `=` while it stays `ident::ident::…`.
        if toks.get(i + 1).is_some_and(|t| t.text == "=") {
            let mut j = i + 2;
            while j < toks.len() && j - i < 12 {
                let t = &toks[j];
                if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    set.insert(name.clone());
                    break;
                }
                if !(t.kind == TokKind::Ident || t.text == ":") {
                    break;
                }
                j += 1;
            }
        }
        // `name: <type containing HashMap/HashSet>` — walk the type
        // expression at angle-bracket depth, stopping at a top-level
        // terminator. Handles struct fields, fn params, and typed lets.
        if toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_none_or(|t| t.text != ":")
            && (i == 0 || (toks[i - 1].text != ":" && toks[i - 1].text != "."))
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut prev = "";
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" if prev == "-" || prev == "=" => {} // `->`, `=>`
                    ">" => depth -= 1,
                    "," | ";" | ")" | "}" | "=" | "{" if depth <= 0 => break,
                    _ => {}
                }
                if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    set.insert(name.clone());
                    break;
                }
                if j - i > 48 {
                    break; // give up on pathological types
                }
                prev = t.text.as_str();
                j += 1;
            }
        }
    }
    set
}

/// Parsed suppression directives of one file.
pub(crate) struct Suppressions {
    /// Line → rules allowed on that line and the next.
    site: BTreeMap<u32, Vec<Rule>>,
    /// File-wide allows.
    file: Vec<Rule>,
    /// Broken directives: `(line, explanation)`.
    malformed: Vec<(u32, String)>,
}

impl Suppressions {
    pub(crate) fn allows(&self, rule: Rule, line: u32) -> bool {
        if self.file.contains(&rule) {
            return true;
        }
        let at = |l: u32| self.site.get(&l).is_some_and(|rs| rs.contains(&rule));
        at(line) || (line > 1 && at(line - 1))
    }
}

pub(crate) fn parse_suppressions(comments: &[Comment]) -> Suppressions {
    let mut sup = Suppressions {
        site: BTreeMap::new(),
        file: Vec::new(),
        malformed: Vec::new(),
    };
    for c in comments {
        // A directive must be the whole comment: the text after the
        // comment markers starts with `simlint:`. Prose that merely
        // *mentions* the syntax (docs, tables) is not a directive.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(directive) = body.strip_prefix("simlint:").map(str::trim) else {
            continue;
        };
        let (file_wide, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = directive.strip_prefix("allow") {
            (false, r)
        } else {
            sup.malformed.push((
                c.line,
                format!("unknown simlint directive `{directive}` (expected allow/allow-file)"),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) else {
            sup.malformed
                .push((c.line, "allow directive missing `(<rule>)`".to_string()));
            continue;
        };
        let (rule_list, tail) = inner;
        let reason = tail.trim_start();
        let reason = reason.strip_prefix("--").map(str::trim);
        if reason.is_none_or(str::is_empty) {
            sup.malformed.push((
                c.line,
                "allow directive missing `-- <reason>` justification".to_string(),
            ));
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for slug in rule_list.split(',') {
            let slug = slug.trim();
            match Rule::from_slug(slug) {
                Some(r) => rules.push(r),
                None => {
                    sup.malformed
                        .push((c.line, format!("allow names unknown rule `{slug}`")));
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        if file_wide {
            sup.file.extend(rules);
        } else {
            sup.site.entry(c.line).or_default().extend(rules);
        }
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(krate: &str, src: &str) -> Vec<Violation> {
        scan_source("test.rs", krate, src, &Config::default())
    }

    fn rules_found(krate: &str, src: &str) -> Vec<Rule> {
        scan(krate, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d1_flags_iteration_not_lookup() {
        let src = r#"
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            fn f(s: &mut S) {
                s.m.insert(1, 2);
                let _ = s.m.get(&1);
                for (k, v) in s.m.iter() { let _ = (k, v); }
            }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn d1_flags_for_loop_over_hash() {
        let src = r#"
            fn f() {
                let mut seen = std::collections::HashSet::new();
                seen.insert(1u32);
                for x in &seen { let _ = x; }
            }
        "#;
        // `seen = … HashSet ::` initialization form.
        assert_eq!(rules_found("routing", src), vec![Rule::HashIteration]);
    }

    #[test]
    fn d1_ignores_out_of_scope_crates_and_vecs() {
        let src = r#"
            struct S { m: HashMap<u32, u32>, v: Vec<u32> }
            fn f(s: &S) {
                for x in s.m.keys() { let _ = x; }
                for y in &s.v { let _ = y; }
            }
        "#;
        assert_eq!(rules_found("workloads", src), vec![]);
        // In scope, only the map iteration fires, not the Vec.
        assert_eq!(rules_found("netsim", src), vec![Rule::HashIteration]);
    }

    #[test]
    fn d1_name_typed_as_vec_elsewhere_not_confused() {
        // `map` here is a Vec; same name as routing's HashMap fields in
        // other files, but tracking is per file.
        let src = "struct L { map: Vec<u32> } fn f(l: &L) { for x in l.map.iter() { let _ = x; } }";
        assert_eq!(rules_found("partition", src), vec![]);
    }

    #[test]
    fn d2_wall_clock() {
        let src = "fn f() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }";
        assert_eq!(rules_found("engine", src), vec![Rule::WallClock]);
        assert_eq!(rules_found("bench", src), vec![], "bench is exempt");
        assert_eq!(
            rules_found("core", "fn f() { let _ = SystemTime::now(); }"),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn d3_entropy() {
        let src = "fn f() { let mut rng = ChaCha8Rng::from_entropy(); rng.gen::<u64>(); }";
        assert_eq!(rules_found("workloads", src), vec![Rule::EntropyRng]);
        let seeded = "fn f() { let mut rng = ChaCha8Rng::seed_from_u64(7); rng.gen::<u64>(); }";
        assert_eq!(rules_found("workloads", seeded), vec![]);
    }

    #[test]
    fn s1_unwrap_expect_panic() {
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.unwrap() }"),
            vec![Rule::UnwrapAudit]
        );
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.expect(\"\") }"),
            vec![Rule::UnwrapAudit]
        );
        assert_eq!(
            rules_found("topology", "fn f() { panic!(\"boom\"); }"),
            vec![Rule::UnwrapAudit]
        );
        // Documented expect and unwrap_or variants are fine.
        assert_eq!(
            rules_found(
                "topology",
                "fn f(o: Option<u32>) -> u32 { o.expect(\"present by construction\") }"
            ),
            vec![]
        );
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }"),
            vec![]
        );
    }

    #[test]
    fn s2_narrowing_casts_scoped_to_hot_crates() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(rules_found("engine", src), vec![Rule::CastLossy]);
        assert_eq!(rules_found("routing", src), vec![Rule::CastLossy]);
        assert_eq!(rules_found("topology", src), vec![]);
        // Widening casts are fine.
        assert_eq!(
            rules_found("engine", "fn f(x: u32) -> u64 { x as u64 }"),
            vec![]
        );
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            fn prod(o: Option<u32>) -> u32 { o.expect("fine") }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let x: Option<u32> = Some(1);
                    assert_eq!(x.unwrap(), 1);
                    let t = Instant::now();
                    let _ = t;
                }
            }
        "#;
        assert_eq!(rules_found("engine", src), vec![]);
    }

    #[test]
    fn test_fn_attribute_exempts_single_fn_only() {
        let src = r#"
            #[test]
            fn t() { let x: Option<u32> = Some(1); let _ = x.unwrap(); }
            fn prod(o: Option<u32>) -> u32 { o.unwrap() }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let above = r#"
            fn f(o: Option<u32>) -> u32 {
                // simlint: allow(unwrap-audit) -- demo justification
                o.unwrap()
            }
        "#;
        assert_eq!(rules_found("engine", above), vec![]);
        let trailing = r#"
            fn f(o: Option<u32>) -> u32 {
                o.unwrap() // simlint: allow(unwrap-audit) -- demo justification
            }
        "#;
        assert_eq!(rules_found("engine", trailing), vec![]);
    }

    #[test]
    fn suppression_requires_reason_and_known_rule() {
        let no_reason = r#"
            fn f(o: Option<u32>) -> u32 {
                // simlint: allow(unwrap-audit)
                o.unwrap()
            }
        "#;
        let found = rules_found("engine", no_reason);
        assert!(found.contains(&Rule::MalformedSuppression), "{found:?}");
        assert!(found.contains(&Rule::UnwrapAudit), "must not suppress");

        let unknown = "// simlint: allow(no-such-rule) -- because\nfn f() {}";
        assert_eq!(
            rules_found("engine", unknown),
            vec![Rule::MalformedSuppression]
        );
    }

    #[test]
    fn d1_flags_for_loop_over_field_path() {
        let src = r#"
            struct S { seen: std::collections::HashSet<u32> }
            fn f(s: &S) -> u32 {
                let mut n = 0;
                for v in &s.seen {
                    n += v;
                }
                n
            }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
    }

    #[test]
    fn d1_flags_indexed_receiver_chain() {
        // The per-node-map pattern: `Vec<HashMap<…>>` indexed, then
        // iterated — the exact shape of the routing `sent` table.
        let src = r#"
            struct S { sent: Vec<std::collections::HashMap<usize, Vec<u16>>> }
            impl S {
                fn holders(&self, origin: usize) -> Vec<usize> {
                    self.sent[origin].keys().copied().collect()
                }
                fn lookup(&self, origin: usize, b: usize) -> bool {
                    self.sent[origin].contains_key(&b)
                }
            }
        "#;
        let v = scan("routing", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
        assert_eq!(v[0].line, 5, "keys() flagged, contains_key lookup not");
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        // Docs (including simlint's own) quote the suppression grammar
        // mid-sentence; only a comment *starting* with `simlint:` is one.
        let src = "//! Suppress via `// simlint: allow(<rule>) -- <reason>` comments.\n\
                   // A table row | `simlint: allow(..)` | also mentions it.\n\
                   fn f() {}\n";
        assert_eq!(rules_found("engine", src), vec![]);
    }

    #[test]
    fn file_wide_suppression() {
        let src = r#"
            // simlint: allow-file(cast-lossy) -- indices are u16 by construction
            fn f(a: usize, b: usize) -> (u16, u16) { (a as u16, b as u16) }
        "#;
        assert_eq!(rules_found("routing", src), vec![]);
    }

    #[test]
    fn suppression_does_not_leak_to_other_rules_or_lines() {
        let src = r#"
            fn f(o: Option<u32>, m: &std::collections::HashMap<u32, u32>) -> u32 {
                // simlint: allow(unwrap-audit) -- only the unwrap
                o.unwrap();
                let s: Vec<_> = m.keys().collect();
                s.len() as u32
            }
        "#;
        // The HashMap parameter form: `m: &std::collections::HashMap<…>`.
        let found = rules_found("engine", src);
        assert_eq!(
            found,
            vec![Rule::HashIteration, Rule::CastLossy],
            "{found:?}"
        );
    }

    #[test]
    fn d4_sum_over_partition_data_fires_index_order_does_not() {
        let hinted = r#"
            fn total(per_partition: &[f64]) -> f64 {
                per_partition.iter().sum::<f64>()
            }
        "#;
        assert_eq!(rules_found("engine", hinted), vec![Rule::FloatOrder]);
        // Same shape, unhinted source: a plain Vec summed in index
        // order is deterministic.
        let plain = r#"
            fn total(weights: &[f64]) -> f64 {
                weights.iter().sum::<f64>()
            }
        "#;
        assert_eq!(rules_found("engine", plain), vec![]);
        // Integer sums are always safe.
        let ints = r#"
            fn total(per_partition: &[u64]) -> u64 {
                per_partition.iter().sum::<u64>()
            }
        "#;
        assert_eq!(rules_found("engine", ints), vec![]);
        // Out-of-scope crate.
        assert_eq!(rules_found("workloads", hinted), vec![]);
    }

    #[test]
    fn d4_fold_fires_unless_order_safe_max_min() {
        let adding = r#"
            fn total(shard_sums: &[f64]) -> f64 {
                shard_sums.iter().fold(0.0f64, |a, b| a + b)
            }
        "#;
        assert_eq!(rules_found("partition", adding), vec![Rule::FloatOrder]);
        // max/min folds are order-independent reductions: the exact
        // shape used by core/hier.rs and topology/brite.rs.
        let maxing = r#"
            fn peak(worker_peaks: &[f64]) -> f64 {
                worker_peaks.iter().fold(f64::NEG_INFINITY, f64::max)
            }
        "#;
        assert_eq!(rules_found("partition", maxing), vec![]);
    }

    #[test]
    fn d4_float_accumulator_in_hinted_loop() {
        let src = r#"
            fn load(outboxes: &[Outbox]) -> f64 {
                let mut total = 0.0;
                for ob in outboxes.iter() {
                    total += ob.bytes as f64;
                }
                total
            }
        "#;
        let v = scan("parutil", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatOrder);
        assert_eq!(v[0].line, 5);
        // Integer accumulator in the same loop: fine.
        let ints = r#"
            fn load(outboxes: &[Outbox]) -> u64 {
                let mut total = 0u64;
                for ob in outboxes.iter() {
                    total += ob.bytes;
                }
                total
            }
        "#;
        assert_eq!(rules_found("parutil", ints), vec![]);
        // Float accumulator over an unhinted source: fine (index order).
        let plain = r#"
            fn load(links: &[Link]) -> f64 {
                let mut total = 0.0;
                for l in links.iter() {
                    total += l.bytes as f64;
                }
                total
            }
        "#;
        assert_eq!(rules_found("parutil", plain), vec![]);
    }

    #[test]
    fn d4_exempt_in_tests_and_suppressible() {
        let test_fn = r#"
            #[test]
            fn t() {
                let per_partition = vec![1.0f64];
                let _ = per_partition.iter().sum::<f64>();
            }
        "#;
        assert_eq!(rules_found("engine", test_fn), vec![]);
        let allowed = r#"
            fn total(per_partition: &[f64]) -> f64 {
                // simlint: allow(float-order) -- summed after a barrier in partition-id order
                per_partition.iter().sum::<f64>()
            }
        "#;
        assert_eq!(rules_found("engine", allowed), vec![]);
    }

    #[test]
    fn d5_taint_flows_through_bindings_into_sinks() {
        let src = r#"
            fn f(engine: &mut Engine) {
                let stamp = queue.as_ptr() as usize;
                let delay = stamp as u64;
                engine.emit(SimTime::from_ns(delay), LpId(0), ());
            }
        "#;
        let v = scan("engine", src);
        // Fires at both the SimTime constructor and the emit call.
        assert!(!v.is_empty(), "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::DeterminismTaint));
        assert!(
            v.iter().any(|x| x.message.contains("line 3")),
            "names the source line: {v:?}"
        );
    }

    #[test]
    fn d5_clean_flow_is_silent() {
        let src = r#"
            fn f(engine: &mut Engine, now: SimTime) {
                let delay = now.as_ns() + 5;
                engine.emit(SimTime::from_ns(delay), LpId(0), ());
            }
        "#;
        assert_eq!(rules_found("engine", src), vec![]);
    }

    #[test]
    fn d5_hash_iteration_taints_loop_bindings() {
        let src = r#"
            fn f(engine: &mut Engine, pending: &std::collections::HashMap<u64, Ev>) {
                for (flow, ev) in pending.iter() {
                    engine.emit(ev.delay, LpId(flow), ());
                }
            }
        "#;
        let found = rules_found("engine", src);
        assert!(found.contains(&Rule::DeterminismTaint), "{found:?}");
    }

    #[test]
    fn d5_field_sink_and_seed_sink() {
        let time_field = r#"
            fn f(ev: &mut Event) {
                let t = clock.elapsed();
                ev.time = t;
            }
        "#;
        let found = rules_found("engine", time_field);
        assert!(found.contains(&Rule::DeterminismTaint), "{found:?}");
        let seed = r#"
            fn f() -> ChaCha8Rng {
                let s = std::ptr::addr_of!(BUF) as usize;
                ChaCha8Rng::seed_from_u64(s as u64)
            }
        "#;
        let found = rules_found("workloads", seed);
        assert!(found.contains(&Rule::DeterminismTaint), "{found:?}");
    }

    #[test]
    fn d5_bench_is_exempt_and_comparisons_do_not_assign() {
        let src = r#"
            fn f(engine: &mut Engine) {
                let t = Instant::now().elapsed();
                engine.emit(SimTime::from_ns(t), LpId(0), ());
            }
        "#;
        assert_eq!(rules_found("bench", src), vec![]);
        // `==` and `=>` must not be parsed as assignments: `delay` would
        // otherwise be tainted by comparison against a tainted value.
        let cmp = r#"
            fn f(engine: &mut Engine, delay: u64) {
                let t = wall.elapsed();
                if delay == t { return; }
                match delay { 0 => {} _ => {} }
                engine.emit(SimTime::from_ns(delay), LpId(0), ());
            }
        "#;
        let found = rules_found("engine", cmp);
        assert_eq!(found, vec![], "{found:?}");
    }

    #[test]
    fn string_contents_never_fire() {
        let src =
            r#"fn f() -> &'static str { "HashMap::iter() Instant::now() panic! from_entropy" }"#;
        assert_eq!(rules_found("engine", src), vec![]);
    }
}
