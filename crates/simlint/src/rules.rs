//! The rule engine: determinism rules D1–D3 and safety rules S1–S2,
//! applied to one lexed source file at a time.
//!
//! | code | slug               | what it catches                                  |
//! |------|--------------------|--------------------------------------------------|
//! | D1   | `hash-iteration`   | iterating `HashMap`/`HashSet` state (lookups OK) |
//! | D2   | `wall-clock`       | `Instant::now` / `SystemTime` reads              |
//! | D3   | `entropy-rng`      | entropy-seeded RNGs (`from_entropy`, …)          |
//! | S1   | `unwrap-audit`     | `.unwrap()`, `.expect("")`, `panic!`             |
//! | S2   | `cast-lossy`       | narrowing `as` casts in hot-path crates          |
//! |      | `malformed-suppression` | broken `simlint: allow(..)` directives      |
//!
//! Detection is token-pattern based (no type inference), so D1 works
//! from *declarations*: any identifier declared in the file with a
//! `HashMap`/`HashSet` type (or initialized from one) is tracked, and
//! iterator-producing calls on it — `.iter()`, `.keys()`, `.values()`,
//! `.drain()`, `.retain()`, `for _ in &x` — are flagged. `#[cfg(test)]`
//! modules and `#[test]` functions are exempt: test code never runs
//! inside the simulation, and timing/ordering quirks there cannot break
//! bit-identical parallel runs.
//!
//! Suppression: `// simlint: allow(<slug>[, <slug>…]) -- <reason>` on
//! the violating line or the line directly above it;
//! `// simlint: allow-file(<slug>) -- <reason>` anywhere in the file
//! for file-wide exemptions. The `-- <reason>` part is mandatory — an
//! allow without a written justification is itself a violation.

use crate::config::{Config, Severity};
use crate::lexer::{lex, str_literal_is_empty, Comment, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// The lint rules. Codes D1–D3 guard determinism, S1–S2 guard safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashIteration,
    WallClock,
    EntropyRng,
    UnwrapAudit,
    CastLossy,
    MalformedSuppression,
}

impl Rule {
    pub const ALL: [Rule; 6] = [
        Rule::HashIteration,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::UnwrapAudit,
        Rule::CastLossy,
        Rule::MalformedSuppression,
    ];

    /// Short code used in reports (`D1` … `S2`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::HashIteration => "D1",
            Rule::WallClock => "D2",
            Rule::EntropyRng => "D3",
            Rule::UnwrapAudit => "S1",
            Rule::CastLossy => "S2",
            Rule::MalformedSuppression => "SUP",
        }
    }

    /// Stable identifier used in config, suppressions, and baselines.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::WallClock => "wall-clock",
            Rule::EntropyRng => "entropy-rng",
            Rule::UnwrapAudit => "unwrap-audit",
            Rule::CastLossy => "cast-lossy",
            Rule::MalformedSuppression => "malformed-suppression",
        }
    }

    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.slug() == slug)
    }

    /// One-line rationale shown next to each finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "iteration order of HashMap/HashSet varies across runs; iterate a \
                 BTreeMap/BTreeSet or an explicitly sorted Vec instead (lookups are fine)"
            }
            Rule::WallClock => {
                "wall-clock reads make runs irreproducible; use virtual SimTime, or move \
                 the measurement into the bench crate"
            }
            Rule::EntropyRng => {
                "entropy-seeded RNGs break replay; seed explicitly (ChaCha8Rng::seed_from_u64)"
            }
            Rule::UnwrapAudit => {
                "use expect(\"why this cannot fail\") or propagate a MassfError instead"
            }
            Rule::CastLossy => {
                "narrowing `as` cast silently truncates; justify with an allow comment or \
                 use try_into with an expect"
            }
            Rule::MalformedSuppression => {
                "write `simlint: allow(<rule>) -- <reason>` with a known rule and a reason"
            }
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed source line (baseline matching key).
    pub snippet: String,
    pub message: String,
    pub severity: Severity,
}

/// Iterator-producing methods that make D1 fire when called on a
/// hash-typed identifier.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Unordered collection type names whose declarations D1 tracks.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Identifiers whose mere presence means an entropy-seeded RNG (D3).
const ENTROPY_IDENTS: [&str; 4] = ["from_entropy", "thread_rng", "OsRng", "getrandom"];

/// Narrowing cast targets flagged by S2 (on 64-bit hosts the working
/// types are u64/usize/f64; these targets all lose range or precision).
const NARROW_TYPES: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Scan one file's source. `path` is the workspace-relative path used
/// in reports; `krate` the crate name used for rule scoping.
pub fn scan_source(path: &str, krate: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let (toks, comments) = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().replace('\t', " "))
            .unwrap_or_default()
    };

    let in_test = test_regions(&toks);
    let sup = parse_suppressions(&comments);
    let hash_idents = collect_hash_idents(&toks);

    let mut out: Vec<Violation> = Vec::new();
    let mut push = |rule: Rule, line: u32, message: String| {
        if !cfg.applies(rule, krate) {
            return;
        }
        if rule != Rule::MalformedSuppression && sup.allows(rule, line) {
            return;
        }
        out.push(Violation {
            rule,
            path: path.to_string(),
            line,
            snippet: snippet(line),
            message,
            severity: cfg.rule(rule).severity,
        });
    };

    for (line, why) in &sup.malformed {
        push(Rule::MalformedSuppression, *line, why.clone());
    }

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let ident = |j: usize| -> Option<&str> {
            toks.get(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
        };
        let punct = |j: usize, c: char| toks.get(j).is_some_and(|t| t.text == c.to_string());

        // D1: `<hash>.iter()` and friends.
        if t.kind == TokKind::Ident && hash_idents.contains(t.text.as_str()) && punct(i + 1, '.') {
            if let Some(m) = ident(i + 2) {
                if ITER_METHODS.contains(&m) {
                    push(
                        Rule::HashIteration,
                        toks[i + 2].line,
                        format!("`{}.{m}()` iterates an unordered collection", t.text),
                    );
                }
            }
        }
        // D1: `<hash>[idx].iter()` — per-element maps (`Vec<HashMap<…>>`)
        // are indexed before the call; walk over the `[…]` to the method.
        if t.kind == TokKind::Ident && hash_idents.contains(t.text.as_str()) && punct(i + 1, '[') {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(b) = toks.get(j) {
                match b.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j - i > 24 {
                    break; // pathological index expression; give up
                }
                j += 1;
            }
            if depth == 0 && punct(j + 1, '.') {
                if let Some(m) = ident(j + 2) {
                    if ITER_METHODS.contains(&m) {
                        push(
                            Rule::HashIteration,
                            toks[j + 2].line,
                            format!("`{}[…].{m}()` iterates an unordered collection", t.text),
                        );
                    }
                }
            }
        }
        // D1: `for pat in [&[mut]] <hash> {`.
        if t.kind == TokKind::Ident && t.text == "for" {
            if let Some((name, line)) = for_loop_over_ident(&toks, i) {
                if hash_idents.contains(name.as_str()) {
                    push(
                        Rule::HashIteration,
                        line,
                        format!("`for … in {name}` iterates an unordered collection"),
                    );
                }
            }
        }
        // D2: Instant::now, SystemTime, UNIX_EPOCH.
        if t.kind == TokKind::Ident {
            if t.text == "Instant"
                && punct(i + 1, ':')
                && punct(i + 2, ':')
                && ident(i + 3) == Some("now")
            {
                push(
                    Rule::WallClock,
                    t.line,
                    "`Instant::now()` wall-clock read".to_string(),
                );
            }
            if t.text == "SystemTime" || t.text == "UNIX_EPOCH" {
                push(
                    Rule::WallClock,
                    t.line,
                    format!("`{}` wall-clock read", t.text),
                );
            }
        }
        // D3: entropy-seeded RNG.
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            push(
                Rule::EntropyRng,
                t.line,
                format!("`{}` draws seed material from OS entropy", t.text),
            );
        }
        // S1: `.unwrap()`, `.expect("")`, `panic!`.
        if t.text == "." && toks.get(i).is_some_and(|t| t.kind == TokKind::Punct) {
            if ident(i + 1) == Some("unwrap") && punct(i + 2, '(') && punct(i + 3, ')') {
                push(
                    Rule::UnwrapAudit,
                    toks[i + 1].line,
                    "`.unwrap()` panics without a message".to_string(),
                );
            }
            if ident(i + 1) == Some("expect")
                && punct(i + 2, '(')
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokKind::Str && str_literal_is_empty(&t.text))
            {
                push(
                    Rule::UnwrapAudit,
                    toks[i + 1].line,
                    "`.expect(\"\")` carries no justification".to_string(),
                );
            }
        }
        if t.kind == TokKind::Ident && t.text == "panic" && punct(i + 1, '!') {
            push(
                Rule::UnwrapAudit,
                t.line,
                "`panic!` in non-test code".to_string(),
            );
        }
        // S2: narrowing `as` cast.
        if t.kind == TokKind::Ident && t.text == "as" {
            if let Some(target) = ident(i + 1) {
                if NARROW_TYPES.contains(&target) {
                    push(
                        Rule::CastLossy,
                        t.line,
                        format!("narrowing cast `as {target}`"),
                    );
                }
            }
        }
    }

    out.retain(|v| v.severity != Severity::Off);
    out.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out.dedup();
    out
}

/// For a `for` keyword at token `i`, return the loop source if it is a
/// bare identifier (optionally `&`/`&mut`-prefixed): the tokens between
/// `in` and the loop body `{`.
fn for_loop_over_ident(toks: &[Tok], i: usize) -> Option<(String, u32)> {
    // Find `in` before the body opens; the pattern cannot contain `in`.
    let mut j = i + 1;
    let mut guard = 0;
    while j < toks.len() && !(toks[j].kind == TokKind::Ident && toks[j].text == "in") {
        if toks[j].text == "{" || toks[j].text == ";" {
            return None; // not a for-loop shape we understand
        }
        j += 1;
        guard += 1;
        if guard > 64 {
            return None;
        }
    }
    // Collect expression tokens until the body `{`.
    let mut expr: Vec<&Tok> = Vec::new();
    let mut k = j + 1;
    while k < toks.len() && toks[k].text != "{" {
        expr.push(&toks[k]);
        k += 1;
        if expr.len() > 8 {
            return None; // complex expression: handled by method rules
        }
    }
    // Accept `x` and dotted paths `a.b.x`, with optional `&`/`&mut`:
    // the *last* segment names the collection being iterated.
    let names: Vec<&&Tok> = expr
        .iter()
        .filter(|t| !(t.text == "&" || t.text == "mut"))
        .collect();
    let mut expect_ident = true;
    for t in &names {
        let ok = if expect_ident {
            t.kind == TokKind::Ident
        } else {
            t.text == "."
        };
        if !ok {
            return None;
        }
        expect_ident = !expect_ident;
    }
    match names.last() {
        Some(last) if !expect_ident => Some((last.text.clone(), expr[0].line)),
        _ => None,
    }
}

/// Mark tokens inside `#[cfg(test)]` items and `#[test]` functions.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t => attr.push(t),
                }
                j += 1;
            }
            let is_test_attr = matches!(attr.as_slice(), ["test"])
                || (attr.first() == Some(&"cfg")
                    && attr.contains(&"test")
                    && !attr.contains(&"not"));
            if is_test_attr {
                // Skip further attributes, then mark to the end of the
                // annotated item (its brace-balanced body, or `;`).
                let mut k = j;
                while k < toks.len()
                    && toks[k].text == "#"
                    && toks.get(k + 1).map(|t| t.text.as_str()) == Some("[")
                {
                    let mut d = 0usize;
                    loop {
                        match toks.get(k).map(|t| t.text.as_str()) {
                            Some("[") => d += 1,
                            Some("]") => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            None => break,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let body_start = k;
                let mut brace = 0usize;
                let mut opened = false;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "{" => {
                            brace += 1;
                            opened = true;
                        }
                        "}" => {
                            brace = brace.saturating_sub(1);
                        }
                        ";" if !opened => break, // e.g. `#[cfg(test)] use …;`
                        _ => {}
                    }
                    k += 1;
                    if opened && brace == 0 {
                        break;
                    }
                }
                for flag in in_test.iter_mut().take(k).skip(body_start.min(i)) {
                    *flag = true;
                }
                // Also cover the attribute itself.
                for flag in in_test.iter_mut().take(j).skip(i) {
                    *flag = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Identifiers declared (or initialized) with a hash-collection type
/// anywhere in the file: `name: …HashMap<…>…`, `name = HashMap::…`.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = &toks[i].text;
        // `name = [path::]HashMap::new()` / `HashSet::with_capacity(…)`:
        // walk the path after `=` while it stays `ident::ident::…`.
        if toks.get(i + 1).is_some_and(|t| t.text == "=") {
            let mut j = i + 2;
            while j < toks.len() && j - i < 12 {
                let t = &toks[j];
                if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    set.insert(name.clone());
                    break;
                }
                if !(t.kind == TokKind::Ident || t.text == ":") {
                    break;
                }
                j += 1;
            }
        }
        // `name: <type containing HashMap/HashSet>` — walk the type
        // expression at angle-bracket depth, stopping at a top-level
        // terminator. Handles struct fields, fn params, and typed lets.
        if toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_none_or(|t| t.text != ":")
            && (i == 0 || (toks[i - 1].text != ":" && toks[i - 1].text != "."))
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut prev = "";
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" if prev == "-" || prev == "=" => {} // `->`, `=>`
                    ">" => depth -= 1,
                    "," | ";" | ")" | "}" | "=" | "{" if depth <= 0 => break,
                    _ => {}
                }
                if t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                    set.insert(name.clone());
                    break;
                }
                if j - i > 48 {
                    break; // give up on pathological types
                }
                prev = t.text.as_str();
                j += 1;
            }
        }
    }
    set
}

/// Parsed suppression directives of one file.
struct Suppressions {
    /// Line → rules allowed on that line and the next.
    site: BTreeMap<u32, Vec<Rule>>,
    /// File-wide allows.
    file: Vec<Rule>,
    /// Broken directives: `(line, explanation)`.
    malformed: Vec<(u32, String)>,
}

impl Suppressions {
    fn allows(&self, rule: Rule, line: u32) -> bool {
        if self.file.contains(&rule) {
            return true;
        }
        let at = |l: u32| self.site.get(&l).is_some_and(|rs| rs.contains(&rule));
        at(line) || (line > 1 && at(line - 1))
    }
}

fn parse_suppressions(comments: &[Comment]) -> Suppressions {
    let mut sup = Suppressions {
        site: BTreeMap::new(),
        file: Vec::new(),
        malformed: Vec::new(),
    };
    for c in comments {
        // A directive must be the whole comment: the text after the
        // comment markers starts with `simlint:`. Prose that merely
        // *mentions* the syntax (docs, tables) is not a directive.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(directive) = body.strip_prefix("simlint:").map(str::trim) else {
            continue;
        };
        let (file_wide, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = directive.strip_prefix("allow") {
            (false, r)
        } else {
            sup.malformed.push((
                c.line,
                format!("unknown simlint directive `{directive}` (expected allow/allow-file)"),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(inner) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) else {
            sup.malformed
                .push((c.line, "allow directive missing `(<rule>)`".to_string()));
            continue;
        };
        let (rule_list, tail) = inner;
        let reason = tail.trim_start();
        let reason = reason.strip_prefix("--").map(str::trim);
        if reason.is_none_or(str::is_empty) {
            sup.malformed.push((
                c.line,
                "allow directive missing `-- <reason>` justification".to_string(),
            ));
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for slug in rule_list.split(',') {
            let slug = slug.trim();
            match Rule::from_slug(slug) {
                Some(r) => rules.push(r),
                None => {
                    sup.malformed
                        .push((c.line, format!("allow names unknown rule `{slug}`")));
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        if file_wide {
            sup.file.extend(rules);
        } else {
            sup.site.entry(c.line).or_default().extend(rules);
        }
    }
    sup
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(krate: &str, src: &str) -> Vec<Violation> {
        scan_source("test.rs", krate, src, &Config::default())
    }

    fn rules_found(krate: &str, src: &str) -> Vec<Rule> {
        scan(krate, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d1_flags_iteration_not_lookup() {
        let src = r#"
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            fn f(s: &mut S) {
                s.m.insert(1, 2);
                let _ = s.m.get(&1);
                for (k, v) in s.m.iter() { let _ = (k, v); }
            }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn d1_flags_for_loop_over_hash() {
        let src = r#"
            fn f() {
                let mut seen = std::collections::HashSet::new();
                seen.insert(1u32);
                for x in &seen { let _ = x; }
            }
        "#;
        // `seen = … HashSet ::` initialization form.
        assert_eq!(rules_found("routing", src), vec![Rule::HashIteration]);
    }

    #[test]
    fn d1_ignores_out_of_scope_crates_and_vecs() {
        let src = r#"
            struct S { m: HashMap<u32, u32>, v: Vec<u32> }
            fn f(s: &S) {
                for x in s.m.keys() { let _ = x; }
                for y in &s.v { let _ = y; }
            }
        "#;
        assert_eq!(rules_found("workloads", src), vec![]);
        // In scope, only the map iteration fires, not the Vec.
        assert_eq!(rules_found("netsim", src), vec![Rule::HashIteration]);
    }

    #[test]
    fn d1_name_typed_as_vec_elsewhere_not_confused() {
        // `map` here is a Vec; same name as routing's HashMap fields in
        // other files, but tracking is per file.
        let src = "struct L { map: Vec<u32> } fn f(l: &L) { for x in l.map.iter() { let _ = x; } }";
        assert_eq!(rules_found("partition", src), vec![]);
    }

    #[test]
    fn d2_wall_clock() {
        let src = "fn f() -> f64 { let t = Instant::now(); t.elapsed().as_secs_f64() }";
        assert_eq!(rules_found("engine", src), vec![Rule::WallClock]);
        assert_eq!(rules_found("bench", src), vec![], "bench is exempt");
        assert_eq!(
            rules_found("core", "fn f() { let _ = SystemTime::now(); }"),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn d3_entropy() {
        let src = "fn f() { let mut rng = ChaCha8Rng::from_entropy(); rng.gen::<u64>(); }";
        assert_eq!(rules_found("workloads", src), vec![Rule::EntropyRng]);
        let seeded = "fn f() { let mut rng = ChaCha8Rng::seed_from_u64(7); rng.gen::<u64>(); }";
        assert_eq!(rules_found("workloads", seeded), vec![]);
    }

    #[test]
    fn s1_unwrap_expect_panic() {
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.unwrap() }"),
            vec![Rule::UnwrapAudit]
        );
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.expect(\"\") }"),
            vec![Rule::UnwrapAudit]
        );
        assert_eq!(
            rules_found("topology", "fn f() { panic!(\"boom\"); }"),
            vec![Rule::UnwrapAudit]
        );
        // Documented expect and unwrap_or variants are fine.
        assert_eq!(
            rules_found(
                "topology",
                "fn f(o: Option<u32>) -> u32 { o.expect(\"present by construction\") }"
            ),
            vec![]
        );
        assert_eq!(
            rules_found("topology", "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }"),
            vec![]
        );
    }

    #[test]
    fn s2_narrowing_casts_scoped_to_hot_crates() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(rules_found("engine", src), vec![Rule::CastLossy]);
        assert_eq!(rules_found("routing", src), vec![Rule::CastLossy]);
        assert_eq!(rules_found("topology", src), vec![]);
        // Widening casts are fine.
        assert_eq!(
            rules_found("engine", "fn f(x: u32) -> u64 { x as u64 }"),
            vec![]
        );
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = r#"
            fn prod(o: Option<u32>) -> u32 { o.expect("fine") }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let x: Option<u32> = Some(1);
                    assert_eq!(x.unwrap(), 1);
                    let t = Instant::now();
                    let _ = t;
                }
            }
        "#;
        assert_eq!(rules_found("engine", src), vec![]);
    }

    #[test]
    fn test_fn_attribute_exempts_single_fn_only() {
        let src = r#"
            #[test]
            fn t() { let x: Option<u32> = Some(1); let _ = x.unwrap(); }
            fn prod(o: Option<u32>) -> u32 { o.unwrap() }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let above = r#"
            fn f(o: Option<u32>) -> u32 {
                // simlint: allow(unwrap-audit) -- demo justification
                o.unwrap()
            }
        "#;
        assert_eq!(rules_found("engine", above), vec![]);
        let trailing = r#"
            fn f(o: Option<u32>) -> u32 {
                o.unwrap() // simlint: allow(unwrap-audit) -- demo justification
            }
        "#;
        assert_eq!(rules_found("engine", trailing), vec![]);
    }

    #[test]
    fn suppression_requires_reason_and_known_rule() {
        let no_reason = r#"
            fn f(o: Option<u32>) -> u32 {
                // simlint: allow(unwrap-audit)
                o.unwrap()
            }
        "#;
        let found = rules_found("engine", no_reason);
        assert!(found.contains(&Rule::MalformedSuppression), "{found:?}");
        assert!(found.contains(&Rule::UnwrapAudit), "must not suppress");

        let unknown = "// simlint: allow(no-such-rule) -- because\nfn f() {}";
        assert_eq!(
            rules_found("engine", unknown),
            vec![Rule::MalformedSuppression]
        );
    }

    #[test]
    fn d1_flags_for_loop_over_field_path() {
        let src = r#"
            struct S { seen: std::collections::HashSet<u32> }
            fn f(s: &S) -> u32 {
                let mut n = 0;
                for v in &s.seen {
                    n += v;
                }
                n
            }
        "#;
        let v = scan("engine", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
    }

    #[test]
    fn d1_flags_indexed_receiver_chain() {
        // The per-node-map pattern: `Vec<HashMap<…>>` indexed, then
        // iterated — the exact shape of the routing `sent` table.
        let src = r#"
            struct S { sent: Vec<std::collections::HashMap<usize, Vec<u16>>> }
            impl S {
                fn holders(&self, origin: usize) -> Vec<usize> {
                    self.sent[origin].keys().copied().collect()
                }
                fn lookup(&self, origin: usize, b: usize) -> bool {
                    self.sent[origin].contains_key(&b)
                }
            }
        "#;
        let v = scan("routing", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::HashIteration);
        assert_eq!(v[0].line, 5, "keys() flagged, contains_key lookup not");
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        // Docs (including simlint's own) quote the suppression grammar
        // mid-sentence; only a comment *starting* with `simlint:` is one.
        let src = "//! Suppress via `// simlint: allow(<rule>) -- <reason>` comments.\n\
                   // A table row | `simlint: allow(..)` | also mentions it.\n\
                   fn f() {}\n";
        assert_eq!(rules_found("engine", src), vec![]);
    }

    #[test]
    fn file_wide_suppression() {
        let src = r#"
            // simlint: allow-file(cast-lossy) -- indices are u16 by construction
            fn f(a: usize, b: usize) -> (u16, u16) { (a as u16, b as u16) }
        "#;
        assert_eq!(rules_found("routing", src), vec![]);
    }

    #[test]
    fn suppression_does_not_leak_to_other_rules_or_lines() {
        let src = r#"
            fn f(o: Option<u32>, m: &std::collections::HashMap<u32, u32>) -> u32 {
                // simlint: allow(unwrap-audit) -- only the unwrap
                o.unwrap();
                let s: Vec<_> = m.keys().collect();
                s.len() as u32
            }
        "#;
        // The HashMap parameter form: `m: &std::collections::HashMap<…>`.
        let found = rules_found("engine", src);
        assert_eq!(
            found,
            vec![Rule::HashIteration, Rule::CastLossy],
            "{found:?}"
        );
    }

    #[test]
    fn string_contents_never_fire() {
        let src =
            r#"fn f() -> &'static str { "HashMap::iter() Instant::now() panic! from_entropy" }"#;
        assert_eq!(rules_found("engine", src), vec![]);
    }
}
