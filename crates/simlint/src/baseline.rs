//! Baseline files: freeze the current set of violations so the gate
//! fails only on *new* ones.
//!
//! Format: one entry per line, `<rule-slug>\t<path>\t<snippet>`, where
//! the snippet is the trimmed source line (so entries survive pure
//! line-number churn). `#` comments and blank lines are ignored —
//! comments are how surviving entries carry their justification.
//! Entries are a multiset: two identical violations need two lines.

use crate::config::Severity;
use crate::rules::Violation;
use std::collections::BTreeMap;

/// The stable identity of a violation for baseline matching.
fn key(v: &Violation) -> String {
    format!("{}\t{}\t{}", v.rule.slug(), v.path, v.snippet)
}

/// A parsed baseline: entry → multiplicity.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse baseline text. Unparseable lines are errors — a typo in a
    /// baseline must not silently stop matching its violation.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            if line.split('\t').count() != 3 {
                return Err(format!(
                    "baseline line {}: expected `rule<TAB>path<TAB>snippet`, got `{line}`",
                    i + 1
                ));
            }
            *entries.entry(line.to_string()).or_insert(0) += 1;
        }
        Ok(Baseline { entries })
    }

    /// Serialize `violations` (deny and warn alike) as a fresh baseline.
    pub fn render(violations: &[Violation]) -> String {
        let mut lines: Vec<String> = violations.iter().map(key).collect();
        lines.sort();
        let mut out = String::from(
            "# simlint baseline: known violations the gate tolerates.\n\
             # One entry per line: <rule-slug><TAB><path><TAB><trimmed source line>.\n\
             # Every surviving entry must carry a justification comment here or an\n\
             # in-source `simlint: allow` reason. Regenerate: simlint --workspace\n\
             # --baseline <this file> --update-baseline.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Number of entries (with multiplicity).
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Split `violations` into `(new, baselined)` and report baseline
    /// entries no current violation consumed (stale — candidates for
    /// deletion). Only deny-severity violations consume entries; warn
    /// violations never fail the gate, so they pass through as matched.
    pub fn compare(&self, violations: &[Violation]) -> Comparison {
        let mut remaining = self.entries.clone();
        let mut new = Vec::new();
        let mut baselined = 0usize;
        for v in violations {
            if v.severity != Severity::Deny {
                continue;
            }
            let k = key(v);
            match remaining.get_mut(&k) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined += 1;
                }
                _ => new.push(v.clone()),
            }
        }
        let stale: Vec<String> = remaining
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(k, _)| k.replace('\t', "  "))
            .collect();
        Comparison {
            new,
            baselined,
            stale,
        }
    }
}

/// Result of matching a scan against a baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Deny violations not covered by the baseline: these fail the gate.
    pub new: Vec<Violation>,
    /// Deny violations the baseline absorbed.
    pub baselined: usize,
    /// Baseline entries with no matching violation left (fixed or moved;
    /// reported so the file can be pruned, but never a failure).
    pub stale: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn v(rule: Rule, path: &str, snippet: &str, sev: Severity) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            caret: 0,
            len: 1,
            snippet: snippet.to_string(),
            message: String::new(),
            severity: sev,
        }
    }

    #[test]
    fn round_trip_render_parse_compare() {
        let vs = vec![
            v(
                Rule::UnwrapAudit,
                "crates/a/src/lib.rs",
                "x.unwrap()",
                Severity::Deny,
            ),
            v(
                Rule::CastLossy,
                "crates/b/src/lib.rs",
                "y as u32",
                Severity::Deny,
            ),
        ];
        let text = Baseline::render(&vs);
        let b = Baseline::parse(&text).expect("rendered baseline parses");
        assert_eq!(b.len(), 2);
        let cmp = b.compare(&vs);
        assert!(cmp.new.is_empty(), "{:?}", cmp.new);
        assert_eq!(cmp.baselined, 2);
        assert!(cmp.stale.is_empty());
    }

    #[test]
    fn new_violation_is_caught_stale_is_reported() {
        let old = vec![v(Rule::UnwrapAudit, "a.rs", "x.unwrap()", Severity::Deny)];
        let b = Baseline::parse(&Baseline::render(&old)).expect("parses");
        let now = vec![v(Rule::UnwrapAudit, "b.rs", "y.unwrap()", Severity::Deny)];
        let cmp = b.compare(&now);
        assert_eq!(cmp.new.len(), 1);
        assert_eq!(cmp.new[0].path, "b.rs");
        assert_eq!(cmp.stale.len(), 1);
        assert!(cmp.stale[0].contains("a.rs"));
    }

    #[test]
    fn multiplicity_is_respected() {
        let two = vec![
            v(Rule::UnwrapAudit, "a.rs", "x.unwrap()", Severity::Deny),
            v(Rule::UnwrapAudit, "a.rs", "x.unwrap()", Severity::Deny),
        ];
        let b = Baseline::parse(&Baseline::render(&two[..1])).expect("parses");
        let cmp = b.compare(&two);
        assert_eq!(cmp.baselined, 1, "one entry absorbs one violation");
        assert_eq!(cmp.new.len(), 1, "the second identical violation is new");
    }

    #[test]
    fn warn_violations_never_fail() {
        let b = Baseline::default();
        let cmp = b.compare(&[v(Rule::CastLossy, "a.rs", "y as u32", Severity::Warn)]);
        assert!(cmp.new.is_empty());
    }

    #[test]
    fn comments_and_blanks_ignored_garbage_rejected() {
        let b = Baseline::parse("# a comment\n\n# another\n").expect("comment-only file");
        assert!(b.is_empty());
        assert!(Baseline::parse("not a tab separated line\n").is_err());
    }
}
