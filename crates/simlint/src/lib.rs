//! # massf-simlint
//!
//! Workspace determinism & safety static analysis for `massf-rs`.
//!
//! The whole value of the reproduction rests on conservative-PDES
//! determinism: runs must be bit-identical across thread and partition
//! counts. That invariant is protected at runtime by the parallel
//! determinism tests — and at *check time* by this tool, which scans
//! every workspace source file with a hand-rolled lexer plus a
//! tolerant Rust-subset item parser ([`parser`]; no registry access,
//! in the spirit of `shims/`) and enforces:
//!
//! * **D1 `hash-iteration`** — no `HashMap`/`HashSet` iteration in
//!   deterministic-critical crates (lookups are fine; iteration must go
//!   through `BTreeMap`/`BTreeSet` or explicitly sorted collections).
//! * **D2 `wall-clock`** — no `Instant::now`/`SystemTime` reads outside
//!   the bench crate.
//! * **D3 `entropy-rng`** — no entropy-seeded RNGs outside bench.
//! * **D4 `float-order`** — no schedule-ordered float accumulation
//!   over partition/worker-shaped state (float `+` is not
//!   associative; sort by partition id or walk a slab in index order).
//! * **D5 `determinism-taint`** — an intra-procedural dataflow pass:
//!   host-derived values (wall clock, OS entropy, pointer addresses,
//!   hash iteration) must not reach simulation inputs (event
//!   emit/schedule, `SimTime::from_*`, seed stores), even laundered
//!   through let-bindings and arithmetic.
//! * **D6 `snapshot-drift`** — cross-file: every field of every type
//!   the snapshot codec serializes must appear in BOTH the encode
//!   (`put_*`) and decode (`get_*`) paths ([`drift`]).
//! * **S1 `unwrap-audit`** — no `.unwrap()`, `.expect("")`, or `panic!`
//!   in non-test code.
//! * **S2 `cast-lossy`** — narrowing `as` casts in the engine/routing
//!   hot paths need a written justification.
//!
//! Rules are configured by the checked-in `simlint.toml`, suppressed
//! per-site via `// simlint: allow(<rule>) -- <reason>` comments, and a
//! `--baseline` file lets the gate fail only on *new* violations. See
//! DESIGN.md §3 items 10 and 15 for the rationale behind each rule, or
//! `--explain <rule>` for the long form.
//!
//! CLI: `cargo run -p massf-simlint -- --workspace
//! [--baseline simlint-baseline.txt] [--update-baseline]
//! [--changed-since REV] [--format text|json]`; findings render
//! compiler-style with caret spans, or as line-oriented JSON for
//! `scripts/lint_annotations.sh`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod drift;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

pub use baseline::{Baseline, Comparison};
pub use config::{Config, CrateScope, Severity};
pub use rules::{scan_source, Rule, Violation};

use std::fs;
use std::path::{Path, PathBuf};

/// CLI/run options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding `simlint.toml`).
    pub root: PathBuf,
    /// Config file path, relative to `root` (default `simlint.toml`);
    /// missing file = built-in defaults.
    pub config_path: PathBuf,
    /// Baseline file path relative to `root`, if baseline mode is on.
    pub baseline_path: Option<PathBuf>,
    /// Rewrite the baseline from the current scan instead of comparing.
    pub update_baseline: bool,
    /// Incremental mode: lint only files changed vs. this git rev
    /// (plus untracked files). D6 snapshot-drift still runs across the
    /// whole workspace — it is cross-file and cheap. Baseline entries
    /// for unscanned files are not reported as stale in this mode.
    pub changed_since: Option<String>,
}

impl Options {
    pub fn new(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            config_path: PathBuf::from("simlint.toml"),
            baseline_path: None,
            update_baseline: false,
            changed_since: None,
        }
    }
}

/// Everything a caller needs to report and gate on.
#[derive(Debug)]
pub struct Outcome {
    /// All violations, sorted (path, line, rule).
    pub violations: Vec<Violation>,
    /// Baseline comparison, when a baseline was supplied and compared.
    pub comparison: Option<Comparison>,
    /// Files scanned.
    pub files: usize,
    /// True when `--update-baseline` rewrote the baseline file.
    pub baseline_written: bool,
}

impl Outcome {
    /// Gate verdict: non-zero when the scan must fail the check.
    /// Deny violations fail; with a baseline, only *new* ones do.
    pub fn exit_code(&self) -> i32 {
        let failing = match &self.comparison {
            Some(c) => c.new.len(),
            None => self
                .violations
                .iter()
                .filter(|v| v.severity == Severity::Deny)
                .count(),
        };
        i32::from(failing > 0)
    }
}

/// Collect the workspace-relative paths of every `.rs` file under the
/// configured include directories, with the crate each belongs to.
/// Deterministically sorted; `target` directories and configured
/// exclude prefixes are skipped.
pub fn workspace_files(root: &Path, cfg: &Config) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            walk(root, &dir, cfg, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        // Prefix exclusion on whole path components: `a/b` excludes
        // `a/b` and `a/b/c.rs` but not the sibling file `a/b.rs`.
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((rel.clone(), crate_of(&rel)));
        }
    }
    Ok(())
}

/// The crate a workspace-relative path belongs to, as used for rule
/// scoping: `crates/<name>/…` → `<name>`, anything else → its top-level
/// directory (the integration-test member `tests/…` → `tests`).
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(top), _) => top.to_string(),
        (None, _) => String::new(),
    }
}

/// Run a full workspace scan with the given options. This is the CLI's
/// whole body — tests drive the identical code path.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let cfg_path = opts.root.join(&opts.config_path);
    let cfg = if cfg_path.is_file() {
        let text = fs::read_to_string(&cfg_path)
            .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?
    } else {
        Config::default()
    };

    let files = workspace_files(&opts.root, &cfg)?;
    let mut sources: Vec<(String, String, String)> = Vec::with_capacity(files.len());
    for (rel, krate) in &files {
        let src = fs::read_to_string(opts.root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        sources.push((rel.clone(), krate.clone(), src));
    }

    // Incremental mode: restrict the per-file scan to changed files.
    let changed = match &opts.changed_since {
        Some(rev) => Some(changed_files(&opts.root, rev)?),
        None => None,
    };
    let scanned: Vec<&(String, String, String)> = sources
        .iter()
        .filter(|(rel, _, _)| changed.as_ref().is_none_or(|ch| ch.contains(rel)))
        .collect();

    let mut violations = Vec::new();
    for (rel, krate, src) in &scanned {
        violations.extend(scan_source(rel, krate, src, &cfg));
    }
    // D6 is cross-file (a codec edit can drift a struct that did not
    // change, and vice versa), so it always sees the whole workspace.
    violations.extend(drift::scan_drift(&sources, &cfg));
    violations.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    let mut comparison = None;
    let mut baseline_written = false;
    if let Some(bl_rel) = &opts.baseline_path {
        let bl_path = opts.root.join(bl_rel);
        if opts.update_baseline {
            if opts.changed_since.is_some() {
                return Err("--update-baseline requires a full scan; \
                            drop --changed-since"
                    .to_string());
            }
            fs::write(&bl_path, Baseline::render(&violations))
                .map_err(|e| format!("cannot write {}: {e}", bl_path.display()))?;
            baseline_written = true;
        } else {
            let baseline = if bl_path.is_file() {
                let text = fs::read_to_string(&bl_path)
                    .map_err(|e| format!("cannot read {}: {e}", bl_path.display()))?;
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", bl_path.display()))?
            } else {
                Baseline::default()
            };
            let mut cmp = baseline.compare(&violations);
            if opts.changed_since.is_some() {
                // A partial scan cannot tell "fixed" from "not scanned":
                // only entries for files we did scan can be called stale.
                cmp.stale.retain(|entry| {
                    scanned
                        .iter()
                        .any(|(rel, _, _)| entry.contains(rel.as_str()))
                });
            }
            comparison = Some(cmp);
        }
    }

    Ok(Outcome {
        violations,
        comparison,
        files: scanned.len(),
        baseline_written,
    })
}

/// Workspace-relative paths of `.rs` files changed vs. `rev`, plus
/// untracked files — `git diff --name-only <rev>` and `git ls-files
/// --others --exclude-standard` against the workspace root.
fn changed_files(root: &Path, rev: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut set = std::collections::BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", rev],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&args)
            .output()
            .map_err(|e| format!("cannot run git {}: {e}", args.join(" ")))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let rel = line.trim().replace('\\', "/");
            if rel.ends_with(".rs") {
                set.insert(rel);
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/engine/src/lib.rs"), "engine");
        assert_eq!(crate_of("crates/simlint/src/rules.rs"), "simlint");
        assert_eq!(crate_of("tests/tests/fault_injection.rs"), "tests");
    }

    #[test]
    fn exit_code_follows_new_violations() {
        let deny = Violation {
            rule: Rule::UnwrapAudit,
            path: "a.rs".into(),
            line: 1,
            col: 3,
            caret: 2,
            len: 6,
            snippet: "x.unwrap()".into(),
            message: String::new(),
            severity: Severity::Deny,
        };
        let clean = Outcome {
            violations: vec![],
            comparison: None,
            files: 1,
            baseline_written: false,
        };
        assert_eq!(clean.exit_code(), 0);
        let dirty = Outcome {
            violations: vec![deny.clone()],
            comparison: None,
            files: 1,
            baseline_written: false,
        };
        assert_eq!(dirty.exit_code(), 1);
        // Baselined: same violation, absorbed.
        let b = Baseline::parse(&Baseline::render(std::slice::from_ref(&deny)))
            .expect("baseline parses");
        let absorbed = Outcome {
            violations: vec![deny.clone()],
            comparison: Some(b.compare(std::slice::from_ref(&deny))),
            files: 1,
            baseline_written: false,
        };
        assert_eq!(absorbed.exit_code(), 0);
    }
}
