//! # massf-simlint
//!
//! Workspace determinism & safety static analysis for `massf-rs`.
//!
//! The whole value of the reproduction rests on conservative-PDES
//! determinism: runs must be bit-identical across thread and partition
//! counts. That invariant is protected at runtime by the parallel
//! determinism tests — and at *check time* by this tool, which scans
//! every workspace source file with a hand-rolled lexer (no registry
//! access, in the spirit of `shims/`) and enforces:
//!
//! * **D1 `hash-iteration`** — no `HashMap`/`HashSet` iteration in
//!   deterministic-critical crates (lookups are fine; iteration must go
//!   through `BTreeMap`/`BTreeSet` or explicitly sorted collections).
//! * **D2 `wall-clock`** — no `Instant::now`/`SystemTime` reads outside
//!   the bench crate.
//! * **D3 `entropy-rng`** — no entropy-seeded RNGs outside bench.
//! * **S1 `unwrap-audit`** — no `.unwrap()`, `.expect("")`, or `panic!`
//!   in non-test code.
//! * **S2 `cast-lossy`** — narrowing `as` casts in the engine/routing
//!   hot paths need a written justification.
//!
//! Rules are configured by the checked-in `simlint.toml`, suppressed
//! per-site via `// simlint: allow(<rule>) -- <reason>` comments, and a
//! `--baseline` file lets the gate fail only on *new* violations. See
//! DESIGN.md §3.10 for the rationale behind each rule.
//!
//! CLI: `cargo run -p massf-simlint -- --workspace
//! [--baseline simlint-baseline.txt] [--update-baseline]`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use baseline::{Baseline, Comparison};
pub use config::{Config, CrateScope, Severity};
pub use rules::{scan_source, Rule, Violation};

use std::fs;
use std::path::{Path, PathBuf};

/// CLI/run options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding `simlint.toml`).
    pub root: PathBuf,
    /// Config file path, relative to `root` (default `simlint.toml`);
    /// missing file = built-in defaults.
    pub config_path: PathBuf,
    /// Baseline file path relative to `root`, if baseline mode is on.
    pub baseline_path: Option<PathBuf>,
    /// Rewrite the baseline from the current scan instead of comparing.
    pub update_baseline: bool,
}

impl Options {
    pub fn new(root: impl Into<PathBuf>) -> Options {
        Options {
            root: root.into(),
            config_path: PathBuf::from("simlint.toml"),
            baseline_path: None,
            update_baseline: false,
        }
    }
}

/// Everything a caller needs to report and gate on.
#[derive(Debug)]
pub struct Outcome {
    /// All violations, sorted (path, line, rule).
    pub violations: Vec<Violation>,
    /// Baseline comparison, when a baseline was supplied and compared.
    pub comparison: Option<Comparison>,
    /// Files scanned.
    pub files: usize,
    /// True when `--update-baseline` rewrote the baseline file.
    pub baseline_written: bool,
}

impl Outcome {
    /// Gate verdict: non-zero when the scan must fail the check.
    /// Deny violations fail; with a baseline, only *new* ones do.
    pub fn exit_code(&self) -> i32 {
        let failing = match &self.comparison {
            Some(c) => c.new.len(),
            None => self
                .violations
                .iter()
                .filter(|v| v.severity == Severity::Deny)
                .count(),
        };
        i32::from(failing > 0)
    }
}

/// Collect the workspace-relative paths of every `.rs` file under the
/// configured include directories, with the crate each belongs to.
/// Deterministically sorted; `target` directories and configured
/// exclude prefixes are skipped.
pub fn workspace_files(root: &Path, cfg: &Config) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            walk(root, &dir, cfg, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map_err(|_| format!("{} escapes the workspace root", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        // Prefix exclusion on whole path components: `a/b` excludes
        // `a/b` and `a/b/c.rs` but not the sibling file `a/b.rs`.
        if cfg
            .exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        if path.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            walk(root, &path, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((rel.clone(), crate_of(&rel)));
        }
    }
    Ok(())
}

/// The crate a workspace-relative path belongs to, as used for rule
/// scoping: `crates/<name>/…` → `<name>`, anything else → its top-level
/// directory (the integration-test member `tests/…` → `tests`).
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(top), _) => top.to_string(),
        (None, _) => String::new(),
    }
}

/// Run a full workspace scan with the given options. This is the CLI's
/// whole body — tests drive the identical code path.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let cfg_path = opts.root.join(&opts.config_path);
    let cfg = if cfg_path.is_file() {
        let text = fs::read_to_string(&cfg_path)
            .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
        Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?
    } else {
        Config::default()
    };

    let files = workspace_files(&opts.root, &cfg)?;
    let mut violations = Vec::new();
    for (rel, krate) in &files {
        let src = fs::read_to_string(opts.root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        violations.extend(scan_source(rel, krate, &src, &cfg));
    }
    violations.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });

    let mut comparison = None;
    let mut baseline_written = false;
    if let Some(bl_rel) = &opts.baseline_path {
        let bl_path = opts.root.join(bl_rel);
        if opts.update_baseline {
            fs::write(&bl_path, Baseline::render(&violations))
                .map_err(|e| format!("cannot write {}: {e}", bl_path.display()))?;
            baseline_written = true;
        } else {
            let baseline = if bl_path.is_file() {
                let text = fs::read_to_string(&bl_path)
                    .map_err(|e| format!("cannot read {}: {e}", bl_path.display()))?;
                Baseline::parse(&text).map_err(|e| format!("{}: {e}", bl_path.display()))?
            } else {
                Baseline::default()
            };
            comparison = Some(baseline.compare(&violations));
        }
    }

    Ok(Outcome {
        violations,
        comparison,
        files: files.len(),
        baseline_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/engine/src/lib.rs"), "engine");
        assert_eq!(crate_of("crates/simlint/src/rules.rs"), "simlint");
        assert_eq!(crate_of("tests/tests/fault_injection.rs"), "tests");
    }

    #[test]
    fn exit_code_follows_new_violations() {
        let deny = Violation {
            rule: Rule::UnwrapAudit,
            path: "a.rs".into(),
            line: 1,
            snippet: "x.unwrap()".into(),
            message: String::new(),
            severity: Severity::Deny,
        };
        let clean = Outcome {
            violations: vec![],
            comparison: None,
            files: 1,
            baseline_written: false,
        };
        assert_eq!(clean.exit_code(), 0);
        let dirty = Outcome {
            violations: vec![deny.clone()],
            comparison: None,
            files: 1,
            baseline_written: false,
        };
        assert_eq!(dirty.exit_code(), 1);
        // Baselined: same violation, absorbed.
        let b = Baseline::parse(&Baseline::render(std::slice::from_ref(&deny)))
            .expect("baseline parses");
        let absorbed = Outcome {
            violations: vec![deny.clone()],
            comparison: Some(b.compare(std::slice::from_ref(&deny))),
            files: 1,
            baseline_written: false,
        };
        assert_eq!(absorbed.exit_code(), 0);
    }
}
