//! A lightweight, parse-tolerant Rust-subset *item* parser layered on
//! [`crate::lexer`]'s token stream.
//!
//! It recovers exactly the structure the scope-aware rules need and no
//! more: the module tree, `use` declarations, `fn` items with
//! brace-matched body spans, `struct` definitions with their named
//! field lists, and `impl`/`trait` blocks with their nested items.
//! `#[test]` / `#[cfg(test)]` markers propagate down the tree, so a
//! rule can ask any item "are you test-only?" without re-scanning
//! attributes.
//!
//! **Tolerance contract:** this is not a validator. Anything the parser
//! does not recognize degrades to single-token skipping (`ItemKind::`
//! absent — the tokens simply belong to no item), and malformed input
//! (unbalanced braces, truncated files) produces a best-effort tree,
//! never an error. The compiler is the authority on well-formedness;
//! rules must stay useful on code that is mid-edit.

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Struct,
    Enum,
    Impl,
    Trait,
    Use,
    /// `const` / `static` / `type` / `macro_rules!` — recognized enough
    /// to skip coherently, not analyzed further.
    Other,
}

/// One named field of a `struct { … }` definition.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    /// The field's type, as space-joined tokens (`Vec < NodeId >`).
    pub ty: String,
    pub line: u32,
    pub col: u32,
}

/// One parsed item. Token indices refer to the token slice the file was
/// parsed from.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name (`fn`/`struct`/`enum`/`mod`/`trait` name; for `impl`
    /// blocks the self-type's last path segment; empty if unnamed).
    pub name: String,
    pub line: u32,
    /// Token range `[start, end)` covering the whole item.
    pub span: (usize, usize),
    /// Token range `[open, close]` of the brace-matched `{ … }` body,
    /// braces included. `None` for `;`-terminated items.
    pub body: Option<(usize, usize)>,
    /// Named fields (structs only).
    pub fields: Vec<FieldDef>,
    /// Nested items (`mod`/`impl`/`trait` bodies).
    pub children: Vec<Item>,
    /// Annotated `#[test]` / `#[cfg(test)]`, or nested inside an item
    /// that is.
    pub is_test: bool,
    /// For `use` items: the imported path, space-joined.
    pub use_path: String,
}

impl Item {
    /// Depth-first walk over this item and all descendants.
    pub fn walk<'a>(&'a self, out: &mut Vec<&'a Item>) {
        out.push(self);
        for c in &self.children {
            c.walk(out);
        }
    }
}

/// Parse a token stream into a best-effort item tree.
pub fn parse(toks: &[Tok]) -> Vec<Item> {
    let mut p = Parser { toks };
    p.items(0, toks.len(), false)
}

/// All items of a tree, flattened depth-first.
pub fn flatten(items: &[Item]) -> Vec<&Item> {
    let mut out = Vec::new();
    for it in items {
        it.walk(&mut out);
    }
    out
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Index just past the `]` closing an attribute starting at `#` (or
    /// `#!`) at `i`; `i + 1` if it isn't an attribute after all.
    fn skip_attr(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.text(j) == "!" {
            j += 1;
        }
        if self.text(j) != "[" {
            return i + 1;
        }
        let mut depth = 0usize;
        while j < self.toks.len() {
            match self.text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Is the attribute at `#` index `i` a `#[test]`-family marker?
    fn attr_is_test(&self, i: usize) -> bool {
        let end = self.skip_attr(i);
        let words: Vec<&str> = self.toks[i..end.min(self.toks.len())]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        matches!(words.as_slice(), ["test"])
            || (words.first() == Some(&"cfg") && words.contains(&"test") && !words.contains(&"not"))
    }

    /// Index just past the `}` matching the `{` at `open` (or `end` if
    /// unbalanced).
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < end {
            match self.text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Scan from `i` for the first `{` or `;` at top level — angle
    /// brackets, parens and square brackets are skipped in matched
    /// groups, so `fn f<T: Fn(u8) -> u8>(x: [u8; 4]) -> Vec<u8>` finds
    /// its body brace, not one hiding in a generic bound.
    fn find_body_or_semi(&self, i: usize, end: usize) -> usize {
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut prev = "";
        let mut j = i;
        while j < end {
            match self.text(j) {
                "<" => angle += 1,
                ">" if prev == "-" || prev == "=" => {} // `->`, `=>`
                ">" if angle > 0 => angle -= 1,
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" | ";" if angle <= 0 && paren <= 0 => return j,
                _ => {}
            }
            prev = self.text(j);
            j += 1;
        }
        end
    }

    /// Parse items in `[i, end)`; `in_test` marks every produced item.
    fn items(&mut self, mut i: usize, end: usize, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while i < end {
            let start = i;
            // Attributes (outer and inner), collecting test-ness.
            let mut is_test = in_test;
            while self.text(i) == "#" && i < end {
                let next = self.skip_attr(i);
                if next == i + 1 {
                    break; // stray `#`, not an attribute
                }
                is_test |= self.attr_is_test(i);
                i = next;
            }
            // Visibility and leading modifiers.
            if self.is_ident(i, "pub") {
                i += 1;
                if self.text(i) == "(" {
                    while i < end && self.text(i) != ")" {
                        i += 1;
                    }
                    i += 1;
                }
            }
            while self.is_ident(i, "const")
                || self.is_ident(i, "async")
                || self.is_ident(i, "unsafe")
                || self.is_ident(i, "extern")
            {
                // `const` here is a modifier only when a `fn` follows;
                // a `const NAME: …` item is handled below.
                if self.is_ident(i, "const") && !self.is_ident(i + 1, "fn") {
                    break;
                }
                i += 1;
                if self.toks.get(i).is_some_and(|t| t.kind == TokKind::Str) {
                    i += 1; // extern "C"
                }
            }
            if i >= end {
                break;
            }
            let kw = self.text(i).to_string();
            let parsed = match kw.as_str() {
                "mod" => Some(self.item_mod(start, i, end, is_test)),
                "fn" => Some(self.item_fn(start, i, end, is_test)),
                "struct" => Some(self.item_struct(start, i, end, is_test)),
                "enum" | "union" => Some(self.item_enum(start, i, end, is_test)),
                "impl" | "trait" => Some(self.item_impl(start, i, end, is_test, &kw)),
                "use" => Some(self.item_use(start, i, end, is_test)),
                "const" | "static" | "type" => Some(self.item_terminated(start, i, end, is_test)),
                "macro_rules" => Some(self.item_macro(start, i, end, is_test)),
                _ => None,
            };
            match parsed {
                Some(item) => {
                    i = item.span.1;
                    if i <= start {
                        i = start + 1; // guarantee progress
                    }
                    out.push(item);
                }
                None => i += 1, // tolerant skip
            }
        }
        out
    }

    fn mk(&self, kind: ItemKind, name: String, start: usize, end: usize, is_test: bool) -> Item {
        Item {
            kind,
            name,
            line: self.line(start),
            span: (start, end),
            body: None,
            fields: Vec::new(),
            children: Vec::new(),
            is_test,
            use_path: String::new(),
        }
    }

    fn item_mod(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let name = self.text(kw + 1).to_string();
        let mut item = self.mk(ItemKind::Mod, name, start, end, is_test);
        let at = self.find_body_or_semi(kw + 1, end);
        if self.text(at) == "{" {
            let close = self.match_brace(at, end);
            item.body = Some((at, close - 1));
            item.children = self.items(at + 1, close.saturating_sub(1), is_test);
            item.span = (start, close);
        } else {
            item.span = (start, (at + 1).min(end)); // `mod name;`
        }
        item
    }

    fn item_fn(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let name = self.text(kw + 1).to_string();
        let mut item = self.mk(ItemKind::Fn, name, start, end, is_test);
        let at = self.find_body_or_semi(kw + 1, end);
        if self.text(at) == "{" {
            let close = self.match_brace(at, end);
            item.body = Some((at, close - 1));
            item.span = (start, close);
        } else {
            item.span = (start, (at + 1).min(end)); // trait method decl
        }
        item
    }

    fn item_struct(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let name = self.text(kw + 1).to_string();
        let mut item = self.mk(ItemKind::Struct, name, start, end, is_test);
        let at = self.find_body_or_semi(kw + 1, end);
        if self.text(at) == "{" {
            let close = self.match_brace(at, end);
            item.body = Some((at, close - 1));
            item.fields = self.fields(at + 1, close.saturating_sub(1));
            item.span = (start, close);
        } else {
            // Tuple struct: `find_body_or_semi` already skipped the
            // parenthesized field list to the trailing `;`. Unit
            // structs land on the `;` directly.
            item.span = (start, (at + 1).min(end));
        }
        item
    }

    fn item_enum(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let name = self.text(kw + 1).to_string();
        let mut item = self.mk(ItemKind::Enum, name, start, end, is_test);
        let at = self.find_body_or_semi(kw + 1, end);
        if self.text(at) == "{" {
            let close = self.match_brace(at, end);
            item.body = Some((at, close - 1));
            item.span = (start, close);
        } else {
            item.span = (start, (at + 1).min(end));
        }
        item
    }

    fn item_impl(
        &mut self,
        start: usize,
        kw: usize,
        end: usize,
        is_test: bool,
        kind: &str,
    ) -> Item {
        let at = self.find_body_or_semi(kw + 1, end);
        // Self-type: last angle-depth-0 ident before the body (or the
        // `where` clause), skipping `for`/`dyn` — generic parameters
        // like the `T`s of `impl<T> Wrapper<T>` sit at depth > 0.
        let mut name = String::new();
        let mut angle = 0i32;
        let mut prev = "";
        for t in &self.toks[kw + 1..at.min(self.toks.len())] {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if prev == "-" || prev == "=" => {}
                ">" if angle > 0 => angle -= 1,
                "where" if angle == 0 => break,
                _ if angle == 0
                    && t.kind == TokKind::Ident
                    && t.text != "for"
                    && t.text != "dyn" =>
                {
                    name = t.text.clone();
                }
                _ => {}
            }
            prev = t.text.as_str();
        }
        let kind = if kind == "trait" {
            ItemKind::Trait
        } else {
            ItemKind::Impl
        };
        let mut item = self.mk(kind, name, start, end, is_test);
        if self.text(at) == "{" {
            let close = self.match_brace(at, end);
            item.body = Some((at, close - 1));
            item.children = self.items(at + 1, close.saturating_sub(1), is_test);
            item.span = (start, close);
        } else {
            item.span = (start, (at + 1).min(end));
        }
        item
    }

    fn item_use(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let mut j = kw + 1;
        let mut path = String::new();
        while j < end && self.text(j) != ";" {
            if !path.is_empty() {
                path.push(' ');
            }
            path.push_str(self.text(j));
            j += 1;
        }
        let mut item = self.mk(
            ItemKind::Use,
            String::new(),
            start,
            (j + 1).min(end),
            is_test,
        );
        item.use_path = path;
        item
    }

    /// `const` / `static` / `type`: skip to the `;` terminating the
    /// item, stepping over any brace-matched initializer block.
    fn item_terminated(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        let name = self.text(kw + 1).to_string();
        let mut j = kw + 1;
        while j < end {
            match self.text(j) {
                "{" => j = self.match_brace(j, end),
                ";" => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        self.mk(ItemKind::Other, name, start, j.min(end), is_test)
    }

    fn item_macro(&mut self, start: usize, kw: usize, end: usize, is_test: bool) -> Item {
        // macro_rules! name { … }
        let name = self.text(kw + 2).to_string();
        let at = self.find_body_or_semi(kw + 1, end);
        let close = if self.text(at) == "{" {
            self.match_brace(at, end)
        } else {
            (at + 1).min(end)
        };
        self.mk(ItemKind::Other, name, start, close, is_test)
    }

    /// Named fields between the braces of a struct body: each is
    /// `[attrs] [pub[(…)]] name : type` up to a top-level `,`.
    fn fields(&mut self, mut i: usize, end: usize) -> Vec<FieldDef> {
        let mut out = Vec::new();
        while i < end {
            while self.text(i) == "#" && i < end {
                let next = self.skip_attr(i);
                if next == i + 1 {
                    break;
                }
                i = next;
            }
            if self.is_ident(i, "pub") {
                i += 1;
                if self.text(i) == "(" {
                    while i < end && self.text(i) != ")" {
                        i += 1;
                    }
                    i += 1;
                }
            }
            let named = self.toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
                && self.text(i + 1) == ":"
                && self.text(i + 2) != ":";
            if !named {
                i += 1; // tolerant: not a field shape we understand
                continue;
            }
            let (line, col) = self.toks.get(i).map_or((0, 0), |t| (t.line, t.col));
            let name = self.text(i).to_string();
            // Type tokens to the field-separating comma at depth 0.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut group = 0i32;
            let mut prev = "";
            let mut ty = String::new();
            while j < end {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" if prev == "-" || prev == "=" => {}
                    ">" if angle > 0 => angle -= 1,
                    "(" | "[" | "{" => group += 1,
                    ")" | "]" | "}" => group -= 1,
                    "," if angle <= 0 && group <= 0 => break,
                    _ => {}
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(self.text(j));
                prev = self.text(j);
                j += 1;
            }
            out.push(FieldDef {
                name,
                ty,
                line,
                col,
            });
            i = j + 1; // past the comma
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(&lex(src).0)
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        flatten(items)
            .into_iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item named {name}"))
    }

    #[test]
    fn parses_module_tree_and_fns() {
        let src = r#"
            mod outer {
                pub mod inner {
                    pub fn leaf(x: u32) -> u32 { x + 1 }
                }
                fn sibling() {}
            }
            fn top() { let a = 1; }
        "#;
        let items = parse_src(src);
        assert_eq!(items.len(), 2);
        let outer = find(&items, "outer");
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children.len(), 2);
        let leaf = find(&items, "leaf");
        assert_eq!(leaf.kind, ItemKind::Fn);
        assert!(leaf.body.is_some());
        let top = find(&items, "top");
        assert!(top.body.is_some());
    }

    #[test]
    fn fn_body_span_is_brace_matched() {
        let src = "fn f() { if a { b(); } else { c(); } } fn g() {}";
        let items = parse_src(src);
        assert_eq!(items.len(), 2);
        let toks = lex(src).0;
        let (open, close) = items[0].body.expect("f has a body");
        assert_eq!(toks[open].text, "{");
        assert_eq!(toks[close].text, "}");
        // g's body must start after f's span.
        assert!(items[1].span.0 >= items[0].span.1);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_body_finding() {
        let src = r#"
            fn f<T: Fn(u8) -> u8, const N: usize>(x: [u8; N]) -> Vec<u8>
            where
                T: Clone,
            {
                x.to_vec()
            }
        "#;
        let items = parse_src(src);
        assert_eq!(items.len(), 1, "{items:?}");
        assert_eq!(items[0].name, "f");
        assert!(items[0].body.is_some());
    }

    #[test]
    fn struct_fields_are_extracted() {
        let src = r#"
            pub struct WorldState {
                pub flow_counter: Vec<u32>,
                pub busy_until: Vec<SimTime>,
                route_cache: RouteCacheState,
                pub(crate) pair: (u64, u64),
            }
            struct Tuple(u32, u64);
            struct Unit;
            pub struct Generic<M: Clone> where M: Send { pub events: Vec<M> }
        "#;
        let items = parse_src(src);
        let ws = find(&items, "WorldState");
        let names: Vec<&str> = ws.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["flow_counter", "busy_until", "route_cache", "pair"]
        );
        assert_eq!(ws.fields[0].ty, "Vec < u32 >");
        assert!(find(&items, "Tuple").fields.is_empty());
        assert!(find(&items, "Unit").fields.is_empty());
        let g = find(&items, "Generic");
        assert_eq!(g.fields.len(), 1);
        assert_eq!(g.fields[0].name, "events");
    }

    #[test]
    fn impl_blocks_nest_their_fns() {
        let src = r#"
            impl<T> Wrapper<T> {
                pub fn get(&self) -> &T { &self.0 }
                fn set(&mut self, v: T) { self.0 = v; }
            }
            impl Display for Wrapper<u8> { fn fmt(&self) {} }
            trait Walk { fn step(&self); fn run(&self) { self.step(); } }
        "#;
        let items = parse_src(src);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Wrapper");
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[1].name, "Wrapper");
        let tr = &items[2];
        assert_eq!(tr.kind, ItemKind::Trait);
        assert_eq!(tr.children.len(), 2);
        assert!(tr.children[0].body.is_none(), "decl has no body");
        assert!(tr.children[1].body.is_some());
    }

    #[test]
    fn test_markers_propagate() {
        let src = r#"
            fn prod() {}
            #[test]
            fn unit() { prod(); }
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn t() {}
            }
            #[cfg(not(test))]
            fn also_prod() {}
        "#;
        let items = parse_src(src);
        assert!(!find(&items, "prod").is_test);
        assert!(find(&items, "unit").is_test);
        assert!(find(&items, "helper").is_test, "nested in cfg(test) mod");
        assert!(find(&items, "t").is_test);
        assert!(!find(&items, "also_prod").is_test);
    }

    #[test]
    fn use_declarations_keep_their_paths() {
        let items = parse_src("use std::collections::{HashMap, HashSet};\nuse crate::x as y;");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Use);
        assert!(items[0].use_path.contains("HashMap"));
        assert!(items[1].use_path.contains("as y"));
    }

    #[test]
    fn tolerant_on_garbage_and_truncation() {
        // Unbalanced braces, stray tokens, truncated fn: no panic, and
        // recognizable items still surface.
        for src in [
            "fn ok() {} ??? @@@ fn also_ok() {}",
            "fn truncated(x: u32",
            "struct Dangling {",
            "impl {", // impl with nothing
            "} } }",
            "",
        ] {
            let _ = parse_src(src); // must not panic
        }
        let items = parse_src("fn ok() {} ??? fn also_ok() {}");
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["ok", "also_ok"]);
    }

    #[test]
    fn const_static_and_macros_are_skipped_coherently() {
        let src = r#"
            const TABLE: [u32; 2] = { [1, 2] };
            static NAME: &str = "x";
            type Alias = Vec<u32>;
            macro_rules! mk { () => {}; }
            fn after() {}
        "#;
        let items = parse_src(src);
        assert_eq!(items.last().map(|i| i.name.as_str()), Some("after"));
        assert!(items.last().is_some_and(|i| i.body.is_some()));
    }
}
