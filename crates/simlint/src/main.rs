//! simlint CLI.
//!
//! ```text
//! cargo run -p massf-simlint -- --workspace \
//!     [--root DIR] [--config PATH] \
//!     [--baseline simlint-baseline.txt] [--update-baseline] \
//!     [--changed-since REV] [--format text|json]
//! cargo run -p massf-simlint -- --explain RULE
//! ```
//!
//! Exit codes: 0 clean (or all deny violations baselined), 1 violations
//! (or new-vs-baseline), 2 usage / IO / config error.

#![forbid(unsafe_code)]

use massf_simlint::{report, Options, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: simlint --workspace [--root DIR] [--config PATH] \
                     [--baseline PATH] [--update-baseline] [--changed-since REV] \
                     [--format text|json]\n       simlint --explain RULE";

/// Output format for findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// What the command line asked for.
#[derive(Debug)]
enum Invocation {
    Scan(Options, Format),
    Explain(Rule),
}

fn parse_args(args: &[String]) -> Result<Invocation, String> {
    let mut workspace = false;
    let mut opts = Options::new(".");
    let mut format = Format::Text;
    let mut explain: Option<Rule> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--config" => {
                let v = it.next().ok_or("--config needs a path argument")?;
                opts.config_path = PathBuf::from(v);
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path argument")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--changed-since" => {
                let v = it
                    .next()
                    .ok_or("--changed-since needs a git rev argument")?;
                opts.changed_since = Some(v.clone());
            }
            "--format" => {
                let v = it.next().ok_or("--format needs text|json")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule slug or code")?;
                let rule = Rule::from_slug(v)
                    .or_else(|| Rule::ALL.into_iter().find(|r| r.code() == v.as_str()))
                    .ok_or_else(|| {
                        let known: Vec<&str> = Rule::ALL.iter().map(|r| r.slug()).collect();
                        format!("unknown rule `{v}`; known rules: {}", known.join(", "))
                    })?;
                explain = Some(rule);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if let Some(rule) = explain {
        return Ok(Invocation::Explain(rule));
    }
    if !workspace {
        return Err(format!("`--workspace` is required\n{USAGE}"));
    }
    if opts.update_baseline && opts.baseline_path.is_none() {
        return Err("`--update-baseline` requires `--baseline PATH`".to_string());
    }
    Ok(Invocation::Scan(opts, format))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, format) = match parse_args(&args) {
        Ok(Invocation::Scan(o, f)) => (o, f),
        Ok(Invocation::Explain(rule)) => {
            println!("{}", rule.explain());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match massf_simlint::run(&opts) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            return ExitCode::from(2);
        }
    };
    if outcome.baseline_written {
        println!(
            "simlint: baseline updated with {} violation(s) across {} file(s)",
            outcome.violations.len(),
            outcome.files
        );
        return ExitCode::SUCCESS;
    }
    // With a baseline, print only the violations that actually gate
    // (new ones); a bare scan prints everything.
    let reported = match &outcome.comparison {
        Some(cmp) => &cmp.new,
        None => &outcome.violations,
    };
    match format {
        Format::Text => print!("{}", report::render_violations(reported)),
        Format::Json => print!("{}", report::render_json(reported)),
    }
    if let Some(cmp) = &outcome.comparison {
        for s in &cmp.stale {
            eprintln!("simlint: stale baseline entry (fix landed — prune it): {s}");
        }
    }
    // JSON mode keeps stdout machine-parseable: the summary goes to
    // stderr there.
    let summary = report::render_summary(
        outcome.files,
        &outcome.violations,
        outcome.comparison.as_ref(),
    );
    match format {
        Format::Text => println!("{summary}"),
        Format::Json => eprintln!("{summary}"),
    }
    ExitCode::from(u8::try_from(outcome.exit_code()).unwrap_or(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let Invocation::Scan(opts, format) = parse_args(&argv(&[
            "--workspace",
            "--root",
            "/w",
            "--config",
            "custom.toml",
            "--baseline",
            "b.txt",
            "--update-baseline",
            "--format",
            "json",
            "--changed-since",
            "HEAD~1",
        ]))
        .expect("valid args") else {
            panic!("expected a scan invocation");
        };
        assert_eq!(opts.root, PathBuf::from("/w"));
        assert_eq!(opts.config_path, PathBuf::from("custom.toml"));
        assert_eq!(opts.baseline_path, Some(PathBuf::from("b.txt")));
        assert!(opts.update_baseline);
        assert_eq!(opts.changed_since.as_deref(), Some("HEAD~1"));
        assert_eq!(format, Format::Json);
    }

    #[test]
    fn explain_accepts_slug_and_code_without_workspace() {
        let Invocation::Explain(r) =
            parse_args(&argv(&["--explain", "float-order"])).expect("slug works")
        else {
            panic!("expected explain");
        };
        assert_eq!(r, Rule::FloatOrder);
        let Invocation::Explain(r) = parse_args(&argv(&["--explain", "D6"])).expect("code works")
        else {
            panic!("expected explain");
        };
        assert_eq!(r, Rule::SnapshotDrift);
        assert!(parse_args(&argv(&["--explain", "nope"])).is_err());
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&argv(&[])).is_err(), "--workspace required");
        assert!(parse_args(&argv(&["--workspace", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["--workspace", "--root"])).is_err());
        assert!(parse_args(&argv(&["--workspace", "--format", "xml"])).is_err());
        assert!(
            parse_args(&argv(&["--workspace", "--update-baseline"])).is_err(),
            "--update-baseline without --baseline"
        );
    }
}
