//! simlint CLI.
//!
//! ```text
//! cargo run -p massf-simlint -- --workspace \
//!     [--root DIR] [--config PATH] \
//!     [--baseline simlint-baseline.txt] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (or all deny violations baselined), 1 violations
//! (or new-vs-baseline), 2 usage / IO / config error.

#![forbid(unsafe_code)]

use massf_simlint::{report, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: simlint --workspace [--root DIR] [--config PATH] \
                     [--baseline PATH] [--update-baseline]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut workspace = false;
    let mut opts = Options::new(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--config" => {
                let v = it.next().ok_or("--config needs a path argument")?;
                opts.config_path = PathBuf::from(v);
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path argument")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("`--workspace` is required\n{USAGE}"));
    }
    if opts.update_baseline && opts.baseline_path.is_none() {
        return Err("`--update-baseline` requires `--baseline PATH`".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match massf_simlint::run(&opts) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("simlint: error: {msg}");
            return ExitCode::from(2);
        }
    };
    if outcome.baseline_written {
        println!(
            "simlint: baseline updated with {} violation(s) across {} file(s)",
            outcome.violations.len(),
            outcome.files
        );
        return ExitCode::SUCCESS;
    }
    // With a baseline, print only the violations that actually gate
    // (new ones); a bare scan prints everything.
    match &outcome.comparison {
        Some(cmp) => print!("{}", report::render_violations(&cmp.new)),
        None => print!("{}", report::render_violations(&outcome.violations)),
    }
    if let Some(cmp) = &outcome.comparison {
        for s in &cmp.stale {
            eprintln!("simlint: stale baseline entry (fix landed — prune it): {s}");
        }
    }
    println!(
        "{}",
        report::render_summary(
            outcome.files,
            &outcome.violations,
            outcome.comparison.as_ref()
        )
    );
    ExitCode::from(u8::try_from(outcome.exit_code()).unwrap_or(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let opts = parse_args(&argv(&[
            "--workspace",
            "--root",
            "/w",
            "--config",
            "custom.toml",
            "--baseline",
            "b.txt",
            "--update-baseline",
        ]))
        .expect("valid args");
        assert_eq!(opts.root, PathBuf::from("/w"));
        assert_eq!(opts.config_path, PathBuf::from("custom.toml"));
        assert_eq!(opts.baseline_path, Some(PathBuf::from("b.txt")));
        assert!(opts.update_baseline);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&argv(&[])).is_err(), "--workspace required");
        assert!(parse_args(&argv(&["--workspace", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["--workspace", "--root"])).is_err());
        assert!(
            parse_args(&argv(&["--workspace", "--update-baseline"])).is_err(),
            "--update-baseline without --baseline"
        );
    }
}
