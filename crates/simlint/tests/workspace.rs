//! End-to-end runs of the `run()` entry point the CLI wraps: the real
//! workspace against the committed baseline, a deliberately broken
//! temp workspace (the gate must fail), and the `--update-baseline`
//! round trip.

use massf_simlint::{run, Options, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

/// A scratch workspace under the repo's own `target/` directory (tests
/// must not write outside the repo), torn down on drop.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> TempWorkspace {
        let root = repo_root()
            .join("target")
            .join(format!("simlint-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/engine/src")).expect("create temp workspace");
        TempWorkspace { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create parent dir");
        }
        fs::write(&path, content).expect("write temp file");
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn real_workspace_matches_committed_baseline() {
    let mut opts = Options::new(repo_root());
    opts.baseline_path = Some(PathBuf::from("simlint-baseline.txt"));
    let outcome = run(&opts).expect("workspace scan succeeds");
    assert!(outcome.files > 50, "scanned only {} files?", outcome.files);
    let cmp = outcome.comparison.as_ref().expect("baseline compared");
    assert!(
        cmp.new.is_empty(),
        "new violations not in simlint-baseline.txt:\n{}",
        massf_simlint::report::render_violations(&cmp.new)
    );
    assert!(
        cmp.stale.is_empty(),
        "stale baseline entries (violation fixed? prune the file): {:?}",
        cmp.stale
    );
    // The committed baseline is EMPTY and must stay that way: every rule
    // — including the v2 families D4 float-order, D5 determinism-taint
    // and D6 snapshot-drift, which all ran in this scan — passes on the
    // real workspace without absorbing a single violation.
    assert_eq!(cmp.baselined, 0, "the committed baseline must stay empty");
    assert_eq!(outcome.exit_code(), 0);
}

/// The v2 acceptance criterion: adding a field to `WorldState` without
/// touching the snapshot codec makes simlint exit non-zero, at the
/// field's declaration line, before any test ever replays a snapshot.
#[test]
fn seeded_field_addition_to_world_state_fails_the_gate() {
    let read_real = |rel: &str| {
        fs::read_to_string(repo_root().join(rel))
            // simlint: allow(unwrap-audit) -- test helper: abort with the path on IO failure
            .unwrap_or_else(|e| panic!("{rel} unreadable: {e}"))
    };
    let world = read_real("crates/netsim/src/world.rs");
    let codec = read_real("crates/snapshot/src/codec.rs");

    // Control: the real pair, unmodified, is drift-free.
    let ws = TempWorkspace::new("d6-clean");
    ws.write("crates/netsim/src/world.rs", &world);
    ws.write("crates/snapshot/src/codec.rs", &codec);
    let clean = run(&Options::new(&ws.root)).expect("scan succeeds");
    assert_eq!(clean.exit_code(), 0, "{:?}", clean.violations);

    // Seed the drift: one new field, codec untouched.
    let needle = "pub struct WorldState";
    let at = world.find(needle).expect("WorldState defined in world.rs");
    let brace = world[at..].find('\n').expect("struct spans lines") + at + 1;
    let mut drifted = world.clone();
    drifted.insert_str(brace, "    pub seeded_drift_probe: u64,\n");

    let ws2 = TempWorkspace::new("d6-drift");
    ws2.write("crates/netsim/src/world.rs", &drifted);
    ws2.write("crates/snapshot/src/codec.rs", &codec);
    let outcome = run(&Options::new(&ws2.root)).expect("scan succeeds");
    assert_eq!(outcome.exit_code(), 1, "{:?}", outcome.violations);
    assert_eq!(outcome.violations.len(), 1, "{:?}", outcome.violations);
    let v = &outcome.violations[0];
    assert_eq!(v.rule, Rule::SnapshotDrift);
    assert!(v.message.contains("seeded_drift_probe"), "{}", v.message);
    assert!(v.message.contains("both the encode"), "{}", v.message);
}

/// `--changed-since` narrows the per-file rules to the changed set but
/// still runs the cross-file drift pass over everything.
#[test]
fn changed_since_scans_a_subset_of_the_workspace() {
    let mut full = Options::new(repo_root());
    full.baseline_path = Some(PathBuf::from("simlint-baseline.txt"));
    let all = run(&full).expect("full scan succeeds");

    let mut incremental = Options::new(repo_root());
    incremental.baseline_path = Some(PathBuf::from("simlint-baseline.txt"));
    incremental.changed_since = Some("HEAD".to_string());
    let subset = run(&incremental).expect("incremental scan succeeds");
    assert!(
        subset.files <= all.files,
        "changed-since scanned {} of {} files",
        subset.files,
        all.files
    );
    assert_eq!(subset.exit_code(), 0, "{:?}", subset.violations);

    // --update-baseline refuses to run from a partial view.
    incremental.update_baseline = true;
    assert!(run(&incremental).is_err());
}

/// The acceptance criterion from the issue: introducing a HashMap
/// iteration into `crates/engine` makes simlint exit non-zero.
#[test]
fn deliberate_hash_iteration_in_engine_fails_the_gate() {
    let ws = TempWorkspace::new("d1");
    ws.write(
        "crates/engine/src/lib.rs",
        r#"
use std::collections::HashMap;
pub fn drain_in_arbitrary_order(m: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}
"#,
    );
    let outcome = run(&Options::new(&ws.root)).expect("scan succeeds");
    assert_eq!(outcome.exit_code(), 1, "{:?}", outcome.violations);
    assert_eq!(outcome.violations.len(), 1);
    assert_eq!(outcome.violations[0].rule, Rule::HashIteration);

    // The same code is fine in a non-deterministic-critical crate.
    let ws2 = TempWorkspace::new("d1-scope");
    ws2.write(
        "crates/workloads/src/lib.rs",
        "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum() }\n",
    );
    let outcome2 = run(&Options::new(&ws2.root)).expect("scan succeeds");
    assert_eq!(outcome2.exit_code(), 0, "{:?}", outcome2.violations);
}

#[test]
fn suppression_and_update_baseline_round_trip() {
    let ws = TempWorkspace::new("roundtrip");
    // One suppressed violation (doesn't count), one real one.
    ws.write(
        "crates/engine/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 {\n\
         \x20   // simlint: allow(unwrap-audit) -- fixture: justified on purpose\n\
         \x20   o.unwrap()\n\
         }\n\
         pub fn g(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    let mut opts = Options::new(&ws.root);
    let outcome = run(&opts).expect("scan succeeds");
    assert_eq!(outcome.violations.len(), 1, "suppressed site must not fire");
    assert_eq!(outcome.exit_code(), 1);

    // `--update-baseline` freezes the remaining violation…
    opts.baseline_path = Some(PathBuf::from("simlint-baseline.txt"));
    opts.update_baseline = true;
    let updated = run(&opts).expect("baseline write succeeds");
    assert!(updated.baseline_written);
    assert!(ws.root.join("simlint-baseline.txt").is_file());

    // …so the next gated run passes.
    opts.update_baseline = false;
    let gated = run(&opts).expect("scan succeeds");
    assert_eq!(gated.exit_code(), 0);
    assert_eq!(gated.comparison.as_ref().expect("compared").baselined, 1);

    // A *new* violation still fails, and the old one stays absorbed.
    ws.write(
        "crates/engine/src/extra.rs",
        "pub fn h() { panic!(\"boom\"); }\n",
    );
    let regressed = run(&opts).expect("scan succeeds");
    assert_eq!(regressed.exit_code(), 1);
    let cmp = regressed.comparison.as_ref().expect("compared");
    assert_eq!(cmp.new.len(), 1);
    assert_eq!(cmp.new[0].rule, Rule::UnwrapAudit);
    assert_eq!(cmp.baselined, 1);
}

#[test]
fn custom_config_overrides_defaults() {
    let ws = TempWorkspace::new("config");
    ws.write(
        "crates/engine/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    // Default config: S1 denies.
    assert_eq!(run(&Options::new(&ws.root)).expect("scan").exit_code(), 1);
    // Config turning S1 off: clean.
    ws.write(
        "simlint.toml",
        "[lint]\ninclude = [\"crates\"]\nexclude = []\n\n[rule.unwrap-audit]\nseverity = \"off\"\n",
    );
    assert_eq!(run(&Options::new(&ws.root)).expect("scan").exit_code(), 0);
    // Malformed config is a hard error, not a silent default.
    ws.write("simlint.toml", "[rule.unwrap-audit]\nseverity = fatal\n");
    assert!(run(&Options::new(&ws.root)).is_err());
}
