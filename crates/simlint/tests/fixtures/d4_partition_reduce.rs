//! D4 clean fixture: the deterministic way to combine per-partition
//! float results — collect into a slab indexed by partition id, then
//! reduce in fixed index order. Must pass every rule without
//! suppressions in the strictest crate scopes.

pub fn combine(per_partition: &mut Vec<(usize, f64)>) -> f64 {
    // Fix the order first: partition id is a pure function of the
    // scenario, so the reduction order is schedule-independent.
    per_partition.sort_by_key(|(pid, _)| *pid);
    let mut total = 0.0f64;
    for (_, load) in per_partition.drain(..) {
        total += load;
    }
    total
}

pub fn integer_counters_are_always_safe(per_worker: &[u64]) -> u64 {
    per_worker.iter().sum::<u64>()
}

pub fn peak_is_order_independent(per_shard: &[f64]) -> f64 {
    per_shard.iter().fold(f64::NEG_INFINITY, f64::max)
}
