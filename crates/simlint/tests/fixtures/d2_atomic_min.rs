//! The overhauled parallel executor's atomic-min rendezvous pattern
//! (crates/engine/src/par.rs): each worker publishes its next local
//! event time with a Relaxed store, crosses a barrier, and reduces the
//! global minimum with Relaxed loads — the barrier provides the
//! happens-before edge, no clock or entropy is involved, and the loop
//! iterates a slice (not a hash map). simlint must report nothing here,
//! for any crate: the hot path is clean by construction, not by
//! suppression.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

const IDLE: u64 = u64::MAX;

pub fn publish_and_global_min(
    next_times: &[AtomicU64],
    mine: usize,
    local_next: Option<u64>,
    barrier: &Barrier,
) -> u64 {
    next_times[mine].store(local_next.unwrap_or(IDLE), Ordering::Relaxed);
    barrier.wait();
    let mut min = IDLE;
    for slot in next_times {
        min = min.min(slot.load(Ordering::Relaxed));
    }
    min
}

pub fn fast_forward_target(global_min: u64, end_ns: u64, window_ns: u64) -> Option<u64> {
    if global_min >= end_ns {
        return None;
    }
    Some(global_min / window_ns)
}
