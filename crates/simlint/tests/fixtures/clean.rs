// Fixture: deterministic, panic-free code no rule should flag.
// Scanned by tests/fixtures.rs, never compiled (directory excluded in
// simlint.toml).
use std::collections::{BTreeMap, HashMap};

fn ordered_world(m: &BTreeMap<u32, u64>, h: &HashMap<u32, u64>) -> u64 {
    // BTreeMap iteration is ordered; HashMap point lookups are fine.
    let total: u64 = m.values().sum();
    total + h.get(&7).copied().unwrap_or(0)
}

fn honest_errors(o: Option<u32>) -> Result<u32, String> {
    o.ok_or_else(|| "missing".to_string())
}

fn widening(a: u16) -> u64 {
    a as u64
}
