// Fixture: S2 lossy `as` casts. Scanned by tests/fixtures.rs as the
// `engine` crate, never compiled (directory excluded in simlint.toml).

fn narrows(n: usize, x: u64, f: f64) -> (u32, u16, f32) {
    let a = n as u32; // violation
    let b = x as u16; // violation
    let c = f as f32; // violation
    (a, b, c)
}

fn widens(a: u16, b: u32) -> (u64, f64, usize) {
    // No violations: widening casts cannot truncate.
    (a as u64, b as f64, b as usize)
}
