// Fixture: S1 unwrap/expect/panic audit. Scanned by tests/fixtures.rs,
// never compiled (the fixtures directory is excluded in simlint.toml).

fn panics(o: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = o.unwrap(); // violation: no message
    let b = r.expect(""); // violation: empty message
    if a + b == 0 {
        panic!("zero"); // violation: panic!
    }
    a + b
}

fn documented(o: Option<u32>) -> u32 {
    // No violations: a written justification or a non-panicking fallback.
    o.expect("validated by the caller") + o.unwrap_or(0)
}

#[test]
fn test_fns_are_exempt() {
    let x: Option<u32> = Some(1);
    assert_eq!(x.unwrap(), 1); // no violation: test code
}
