//! The route-interning table + CSR port-table shapes from the
//! million-host memory layout (crates/netsim/src/world.rs): the
//! per-source interning shard uses its `HashMap` strictly for point
//! insert/lookup — never iteration — and every scan the hot path
//! performs walks sorted CSR arrays, whose order is structural. simlint
//! must report nothing here, in the strictest crate scopes: the layout
//! is D1-clean (hash-iteration-free) by construction, not by
//! suppression.

use std::collections::HashMap;
use std::sync::Arc;

/// One interning shard: keyed point lookups only.
pub struct InternShard {
    paths: HashMap<(u64, u32, u32), Arc<[u32]>>,
}

impl InternShard {
    pub fn intern(&mut self, epoch: u64, src: u32, dst: u32, path: &[u32]) -> Arc<[u32]> {
        self.paths
            .entry((epoch, src, dst))
            .or_insert_with(|| Arc::from(path))
            .clone()
    }

    pub fn lookup(&self, epoch: u64, src: u32, dst: u32) -> Option<Arc<[u32]>> {
        self.paths.get(&(epoch, src, dst)).cloned()
    }
}

/// CSR adjacency: per-node offsets into sorted neighbor/port arrays.
pub struct PortCsr {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    ports: Vec<u32>,
}

impl PortCsr {
    /// Next-hop port lookup: binary search within the node's row.
    pub fn port(&self, node: u32, next: u32) -> Option<u32> {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        let row = &self.neighbors[lo..hi];
        let at = row.binary_search(&next).ok()?;
        Some(self.ports[lo + at])
    }

    /// Full-table scans iterate the CSR arrays — structural order.
    pub fn degree_sum(&self) -> u64 {
        let mut total = 0u64;
        for w in self.offsets.windows(2) {
            total += u64::from(w[1] - w[0]);
        }
        total
    }
}
