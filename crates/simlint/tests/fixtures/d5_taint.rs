//! D5 fixture: host-environment values flowing through locals into
//! simulation inputs. The wall-clock / entropy reads also fire D2/D3
//! at their own lines; determinism-taint fires at the *sinks* and
//! names the originating source line.

pub fn wall_clock_becomes_event_time(q: &mut EventQueue, ev: Event) {
    let stamp = SystemTime::now(); // D2 fires here; `stamp` is now tainted
    let nanos = to_ns(stamp); // taint propagates: nanos <- stamp
    let t = SimTime::from_ns(nanos); // line 9: D5 at the from_ns sink
    q.schedule_at(t, ev); // line 10: D5 again — `t` carries the taint
}

pub fn entropy_becomes_seed(world: &mut World) {
    let raw = next_u64(&mut OsRng); // D3 fires here; `raw` is tainted
    let mixed = raw ^ 0x9e37_79b9_7f4a_7c15; // taint propagates: mixed <- raw
    world.cfg.seed = mixed; // line 16: D5 at the `.seed =` field sink
}

pub fn pointer_order_leaks_into_emit(hosts: &[Host], bus: &mut Bus) {
    let key = hosts.as_ptr() as usize; // `key` tainted by the address read
    bus.emit(key as u64); // line 21: D5 at the emit sink
}

// Shapes that must NOT fire D5:

pub fn sim_derived_time_is_fine(q: &mut EventQueue, now: SimTime, ev: Event) {
    let t = now + ev.delay; // derived purely from simulated state
    q.schedule_at(t, ev);
}

pub fn taint_without_a_sink_is_fine(metrics: &mut Metrics) {
    let started = SystemTime::now(); // D2 still fires, but no taint sink
    metrics.wall_start = started; // `.wall_start` is not a sim input
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let t = SimTime::from_ns(elapsed_ns(SystemTime::now()));
        assert!(t.as_ns() >= 0);
    }
}
