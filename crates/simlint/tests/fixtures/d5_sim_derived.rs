//! D5 clean fixture: the deterministic way to produce event times and
//! seeds — everything derives from scenario config or simulated state.
//! Must pass every rule without suppressions in the strictest scopes.

pub fn schedule_from_sim_state(q: &mut EventQueue, now: SimTime, flow: &Flow) {
    // Event time = current virtual time + a latency computed from the
    // scenario topology. No host clock anywhere in the chain.
    let latency = flow.route_latency_ns();
    let t = now + SimDuration::from_ns(latency);
    q.schedule_at(t, flow.next_event());
}

pub fn seed_from_config(cfg: &ScenarioConfig, world: &mut World) {
    // Per-host streams are split off the scenario's master seed; rerun
    // with the same config and every stream replays identically.
    let stream = cfg.master_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    world.cfg.seed = stream ^ u64::from(world.host_id);
}

pub fn emit_sim_measurements(bus: &mut Bus, now: SimTime, delivered: u64) {
    // Emitting values that are pure functions of the simulation is the
    // whole point — only host-derived inputs are banned.
    bus.emit(Sample::new(now, delivered));
}
