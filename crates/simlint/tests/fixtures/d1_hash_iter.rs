// Fixture: every D1 hash-iteration shape. Scanned by tests/fixtures.rs,
// never compiled (the fixtures directory is excluded in simlint.toml).
use std::collections::{BTreeMap, HashMap, HashSet};

struct Tables {
    by_id: HashMap<u32, u64>,
    seen: HashSet<u32>,
    per_node: Vec<HashMap<usize, Vec<u16>>>,
}

fn iterates(t: &Tables) -> usize {
    let mut n = 0;
    for k in t.by_id.keys() {
        // violation: keys()
        n += *k as usize;
    }
    for v in &t.seen {
        // violation: for-loop over a HashSet
        n += *v as usize;
    }
    n += t.per_node[0].iter().count(); // violation: indexed receiver
    n
}

fn lookups_are_fine(t: &Tables) -> bool {
    // No violations: point lookups don't depend on iteration order.
    t.by_id.contains_key(&7) && t.seen.contains(&7) && t.per_node[0].get(&7).is_some()
}

fn ordered_is_fine(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum() // no violation: BTreeMap iteration is ordered
}
