//! The checkpoint-serializer shape from crates/snapshot: every slab the
//! encoder walks is a `Vec` the exporter already sorted into canonical
//! order (flows by id, receivers by (node, flow)), and integrity is a
//! CRC folded over the byte stream — no unordered collection is ever
//! iterated, so identical worlds serialize to identical bytes. simlint
//! must report nothing here with the snapshot crate in the strictest D1
//! scope: the serializer is hash-iteration-free by construction, not by
//! suppression.

/// A flow row, pre-sorted by `id` in the exporter.
pub struct FlowRow {
    pub id: u64,
    pub src: u32,
    pub bytes_left: u64,
}

/// Byte-stream writer with a running checksum, as in snapshot::wire.
pub struct ChecksummedWriter {
    buf: Vec<u8>,
    crc: u32,
}

impl ChecksummedWriter {
    pub fn put_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.crc = self.crc.rotate_left(5) ^ u32::from(b);
            self.buf.push(b);
        }
    }

    pub fn put_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.crc = self.crc.rotate_left(5) ^ u32::from(b);
            self.buf.push(b);
        }
    }

    /// Encode a slab: count, then rows in the slab's canonical order.
    /// The iteration is over a `Vec` — structural, deterministic.
    pub fn put_flows(&mut self, flows: &[FlowRow]) {
        self.put_u64(flows.len() as u64);
        for f in flows {
            self.put_u64(f.id);
            self.put_u32(f.src);
            self.put_u64(f.bytes_left);
        }
    }

    pub fn finish(self) -> (Vec<u8>, u32) {
        (self.buf, self.crc)
    }
}

/// The decoder's mirror: bounds-checked reads off the byte slice, again
/// touching no unordered collection.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(bytes);
    Some(u64::from_le_bytes(arr))
}
