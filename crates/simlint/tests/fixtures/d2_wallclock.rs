// Fixture: D2 wall-clock reads. Scanned by tests/fixtures.rs, never
// compiled (the fixtures directory is excluded in simlint.toml).
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn measures() -> f64 {
    let start = Instant::now(); // violation
    let _epoch = SystemTime::now() // violation (SystemTime)
        .duration_since(UNIX_EPOCH); // violation (UNIX_EPOCH)
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    // No violation: test code may time itself.
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
