//! D6 fixture structs, "serialized" by d6_codec.rs. GoodState round-trips
//! completely; DriftState has two drifted fields (lines marked).

pub struct GoodState {
    pub ticks: u64,
    pub load: f64,
}

pub struct DriftState {
    pub epoch: u64,
    pub added_later: u32, // line 11: decoder knows it, encoder does not
    pub ghost: u16,       // line 12: neither path has heard of it
}
