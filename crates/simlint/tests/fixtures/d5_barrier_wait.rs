//! D5 fixture: measured barrier-wait times (`barrier_wait_us`,
//! `total_barrier_wait_us`) are wall-clock readings even though they
//! live in `ExecutionStats` next to deterministic counters. They may
//! be reported, but must never steer simulation inputs — that breaks
//! bit-identity across hosts and thread schedules.

pub fn wait_steers_event_time(stats: &ExecutionStats, q: &mut EventQueue, ev: Event) {
    let stall = stats.total_barrier_wait_us(); // tainted: measured wall clock
    let backoff = stall / 1_000 + 1; // taint propagates: backoff <- stall
    let t = SimTime::from_us(backoff); // line 10: D5 at the from_us sink
    q.schedule_at(t, ev); // line 11: D5 again — `t` carries the taint
}

pub fn per_round_wait_becomes_seed(stats: &ExecutionStats, world: &mut World) {
    let widest = slice_max(&stats.barrier_wait_us); // tainted: per-round wall clock
    world.cfg.seed = widest; // line 16: D5 at the `.seed =` field sink
}

// Shapes that must NOT fire: deterministic load signals may steer the
// decision, and measured waits may be observed for reporting.

pub fn totals_steer_the_decision(stats: &ExecutionStats, plan: &mut RebalancePlan) {
    let loads = stats.partition_totals(); // deterministic event counts
    if imbalance_permille(&loads) > plan.threshold_permille {
        plan.queue_moves(&loads);
    }
}

pub fn waits_reported_not_replayed(stats: &ExecutionStats, report: &mut Report) {
    let stall = stats.total_barrier_wait_us(); // tainted, but…
    report.wall_stall_us = stall; // …`.wall_stall_us` is not a sim input
}
