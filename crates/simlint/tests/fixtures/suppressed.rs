// Fixture: suppression forms. Scanned by tests/fixtures.rs, never
// compiled (the fixtures directory is excluded in simlint.toml).
// simlint: allow-file(cast-lossy) -- fixture-wide: indices bounded by construction

fn site_suppressed(o: Option<u32>) -> u32 {
    // simlint: allow(unwrap-audit) -- exercised by the suppression test
    o.unwrap()
}

fn trailing_suppressed(o: Option<u32>) -> u32 {
    o.unwrap() // simlint: allow(unwrap-audit) -- trailing form
}

fn file_suppressed(n: usize) -> u32 {
    n as u32 // covered by the allow-file directive above
}

fn still_fires(o: Option<u32>) -> u32 {
    o.unwrap() // violation: no suppression reaches this line
}
