//! D4 fixture: float accumulation over partition-ordered data.
//! Expected: three float-order violations (lines marked).

pub fn sum_turbofish(per_partition: &[f64]) -> f64 {
    per_partition.iter().sum::<f64>() // line 5: .sum::<f64> over hinted data
}

pub fn fold_add(shard_totals: &[f64]) -> f64 {
    shard_totals.iter().fold(0.0f64, |a, b| a + b) // line 9: float fold
}

pub fn loop_accumulate(outboxes: &[Outbox]) -> f64 {
    let mut total: f64 = 0.0;
    for ob in outboxes.iter() {
        total += ob.bytes as f64; // line 15: += in hinted loop
    }
    total
}

// Order-safe shapes that must NOT fire:

pub fn max_fold_is_order_safe(worker_peaks: &[f64]) -> f64 {
    worker_peaks.iter().fold(f64::NEG_INFINITY, f64::max)
}

pub fn index_order_sum_is_fine(weights: &[f64]) -> f64 {
    weights.iter().sum::<f64>()
}

pub fn integer_accumulation_is_fine(per_partition: &[u64]) -> u64 {
    let mut total = 0u64;
    for x in per_partition.iter() {
        total += x;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let per_partition = vec![1.0f64, 2.0];
        assert!(per_partition.iter().sum::<f64>() > 0.0);
    }
}
