//! D6 fixture codec. `GoodState` is fully covered by both paths (the
//! clean pair). `DriftState` drifted: `added_later` was added to the
//! decoder only, and `ghost` to neither path.

pub fn put_good_state(buf: &mut Vec<u8>, s: &GoodState) {
    put_u64(buf, s.ticks);
    put_f64(buf, s.load);
}

pub fn get_good_state(r: &mut Reader) -> GoodState {
    let ticks = get_u64(r);
    let load = get_f64(r);
    GoodState { ticks, load }
}

pub fn put_drift_state(buf: &mut Vec<u8>, s: &DriftState) {
    put_u64(buf, s.epoch);
}

pub fn get_drift_state(r: &mut Reader) -> DriftState {
    DriftState {
        epoch: get_u64(r),
        added_later: 0,
        ..Default::default()
    }
}
