// Fixture: D3 entropy-seeded RNG. Scanned by tests/fixtures.rs, never
// compiled (the fixtures directory is excluded in simlint.toml).
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn nondeterministic() -> u64 {
    let mut rng = ChaCha8Rng::from_entropy(); // violation
    let mut other = rand::thread_rng(); // violation
    rng.gen::<u64>() ^ other.gen::<u64>()
}

fn deterministic(seed: u64) -> u64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed); // no violation
    rng.gen::<u64>()
}
