//! One fixture file per rule: scan each with the default config and
//! assert exactly the marked violations fire. The fixtures directory is
//! excluded from workspace scans (simlint.toml) and is never compiled.

use massf_simlint::{scan_source, Config, Rule};
use std::path::Path;

fn scan_fixture(name: &str, krate: &str) -> Vec<(Rule, u32)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        // simlint: allow(unwrap-audit) -- test helper: abort with the fixture path on IO failure
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    scan_source(name, krate, &src, &Config::default())
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn d1_hash_iteration_fixture() {
    let found = scan_fixture("d1_hash_iter.rs", "engine");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::HashIteration));
    // keys() loop, for-loop over the set, indexed-receiver iter().
    let lines: Vec<u32> = found.iter().map(|(_, l)| *l).collect();
    assert_eq!(lines, vec![13, 17, 21], "{found:?}");
}

#[test]
fn d1_does_not_apply_outside_deterministic_crates() {
    let found = scan_fixture("d1_hash_iter.rs", "workloads");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn d2_wall_clock_fixture() {
    let found = scan_fixture("d2_wallclock.rs", "engine");
    assert!(found.len() >= 3, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::WallClock));
    // The #[cfg(test)] module's Instant::now() is exempt.
    assert!(found.iter().all(|(_, l)| *l < 12), "{found:?}");
    // bench is allowed to read the clock.
    assert!(scan_fixture("d2_wallclock.rs", "bench").is_empty());
}

#[test]
fn d2_atomic_min_pattern_is_clean() {
    // The executor's Relaxed-atomics-plus-barrier rendezvous must pass
    // every rule without suppressions, in the strictest crate scope.
    for krate in ["engine", "core", "bench"] {
        let found = scan_fixture("d2_atomic_min.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}

#[test]
fn d1_route_interning_pattern_is_clean() {
    // The million-host layout's interning table (point HashMap lookups
    // only) and CSR port table (sorted-array walks) must pass every
    // rule without suppressions in the crates that use the pattern.
    for krate in ["netsim", "engine", "routing"] {
        let found = scan_fixture("route_interning.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}

#[test]
fn d1_snapshot_serializer_pattern_is_clean() {
    // The checkpoint serializer (sorted-slab walks + streaming CRC,
    // crates/snapshot) must pass every rule without suppressions in the
    // snapshot crate's own scope — which defaults to the strictest D1
    // list — and in the other deterministic-critical scopes.
    for krate in ["snapshot", "engine", "netsim"] {
        let found = scan_fixture("snapshot_serializer.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}

#[test]
fn d1_applies_to_the_snapshot_crate_by_default() {
    // A hash-iteration in the snapshot crate is a default-config
    // violation: checkpoint bytes must be a pure function of the world.
    let found = scan_fixture("d1_hash_iter.rs", "snapshot");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::HashIteration));
}

#[test]
fn d3_entropy_fixture() {
    let found = scan_fixture("d3_entropy.rs", "engine");
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::EntropyRng));
    assert!(scan_fixture("d3_entropy.rs", "bench").is_empty());
}

#[test]
fn s1_unwrap_fixture() {
    let found = scan_fixture("s1_unwrap.rs", "workloads");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::UnwrapAudit));
    let lines: Vec<u32> = found.iter().map(|(_, l)| *l).collect();
    assert_eq!(lines, vec![5, 6, 8], "unwrap, empty expect, panic!");
}

#[test]
fn s2_cast_fixture() {
    let found = scan_fixture("s2_cast.rs", "engine");
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().all(|(r, _)| *r == Rule::CastLossy));
    // Out of scope for crates not in the rule's include list.
    assert!(scan_fixture("s2_cast.rs", "netsim").is_empty());
}

#[test]
fn d4_float_order_fixture() {
    let found = scan_fixture("d4_float_order.rs", "engine");
    assert!(
        found.iter().all(|(r, _)| *r == Rule::FloatOrder),
        "{found:?}"
    );
    let lines: Vec<u32> = found.iter().map(|(_, l)| *l).collect();
    // sum::<f64> turbofish, float fold, += in a hinted loop; the
    // max-fold / unhinted / integer / #[cfg(test)] shapes are silent.
    assert_eq!(lines, vec![5, 9, 15], "{found:?}");
}

#[test]
fn d4_out_of_scope_crate_is_exempt() {
    // `workloads` is not in the float-order include list: replay there
    // never feeds state back into the deterministic core.
    assert!(scan_fixture("d4_float_order.rs", "workloads").is_empty());
}

#[test]
fn d4_partition_reduce_pattern_is_clean() {
    // The documented remediation — sort by partition id, then reduce in
    // a fixed order — must pass every rule in the strictest scopes.
    for krate in ["engine", "parutil", "core"] {
        let found = scan_fixture("d4_partition_reduce.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}

#[test]
fn d5_taint_fixture() {
    let found = scan_fixture("d5_taint.rs", "engine");
    // The raw reads fire their own rules at the source lines…
    let d2: Vec<u32> = found
        .iter()
        .filter(|(r, _)| *r == Rule::WallClock)
        .map(|(_, l)| *l)
        .collect();
    assert_eq!(d2, vec![7, 32], "{found:?}");
    assert!(
        found
            .iter()
            .any(|(r, l)| *r == Rule::EntropyRng && *l == 14),
        "{found:?}"
    );
    // …and the taint rule fires at the four sinks the values reach.
    let d5: Vec<u32> = found
        .iter()
        .filter(|(r, _)| *r == Rule::DeterminismTaint)
        .map(|(_, l)| *l)
        .collect();
    assert_eq!(d5, vec![9, 10, 16, 21], "{found:?}");
}

#[test]
fn d5_barrier_wait_fixture() {
    let found = scan_fixture("d5_barrier_wait.rs", "engine");
    // Only the taint rule fires: barrier waits are not Instant/SystemTime
    // reads, so D2 stays silent at the source lines.
    assert!(
        found.iter().all(|(r, _)| *r == Rule::DeterminismTaint),
        "{found:?}"
    );
    let lines: Vec<u32> = found.iter().map(|(_, l)| *l).collect();
    // from_us sink, schedule_at sink, `.seed =` field sink; the
    // deterministic partition_totals decision and the report-only wait
    // read stay silent.
    assert_eq!(lines, vec![10, 11, 16], "{found:?}");
    // bench may measure whatever it likes.
    assert!(scan_fixture("d5_barrier_wait.rs", "bench").is_empty());
}

#[test]
fn d5_bench_crate_is_exempt() {
    let found = scan_fixture("d5_taint.rs", "bench");
    assert!(
        found.iter().all(|(r, _)| *r != Rule::DeterminismTaint),
        "{found:?}"
    );
}

#[test]
fn d5_sim_derived_pattern_is_clean() {
    // Event times and seeds derived from scenario config / simulated
    // state hit the same sink functions and must stay silent.
    for krate in ["engine", "core", "netsim"] {
        let found = scan_fixture("d5_sim_derived.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}

#[test]
fn d6_snapshot_drift_fixture() {
    let read = |name: &str| {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(name);
        std::fs::read_to_string(&path)
            // simlint: allow(unwrap-audit) -- test helper: abort with the fixture path on IO failure
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
    };
    let mut cfg = Config::default();
    cfg.drift_codec = "d6_codec.rs".to_string();
    cfg.drift_types = vec!["GoodState".to_string(), "DriftState".to_string()];
    let files = vec![
        (
            "d6_codec.rs".to_string(),
            "snapshot".to_string(),
            read("d6_codec.rs"),
        ),
        (
            "d6_structs.rs".to_string(),
            "netsim".to_string(),
            read("d6_structs.rs"),
        ),
    ];
    let found = massf_simlint::drift::scan_drift(&files, &cfg);
    // GoodState round-trips: no findings. DriftState: `added_later` is
    // decode-only, `ghost` is in neither path.
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == Rule::SnapshotDrift));
    assert!(
        found[0].line == 11 && found[0].message.contains("added_later"),
        "{found:?}"
    );
    assert!(
        found[0].message.contains("the encode path (put_*)"),
        "{}",
        found[0].message
    );
    assert!(
        found[1].line == 12 && found[1].message.contains("ghost"),
        "{found:?}"
    );
    assert!(
        found[1].message.contains("both the encode"),
        "{}",
        found[1].message
    );
}

#[test]
fn suppression_fixture() {
    let found = scan_fixture("suppressed.rs", "engine");
    // Everything suppressed except the final undocumented unwrap.
    assert_eq!(found, vec![(Rule::UnwrapAudit, 19)], "{found:?}");
}

#[test]
fn clean_fixture_is_clean() {
    for krate in ["engine", "routing", "bench", "workloads"] {
        let found = scan_fixture("clean.rs", krate);
        assert!(found.is_empty(), "{krate}: {found:?}");
    }
}
