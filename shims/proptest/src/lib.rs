//! Offline shim for the subset of `proptest` 1 this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`collection::vec`], [`any`], [`Just`], and the
//! `prop_assert*` macros.
//!
//! No shrinking: a failing case reports the sampled inputs (via
//! `Debug`) and the case index, then panics. Cases are generated from a
//! deterministic per-test seed, so failures reproduce across runs.

#![forbid(unsafe_code)]

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive from a test-name hash and a case index.
    pub fn deterministic(test_hash: u64, case: u64) -> Self {
        TestRng {
            state: test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a over a test's name, giving each test its own stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Something that can produce random values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128 - s as i128 + 1) as u64;
                s.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64 spans can exceed i128 precision tricks above; specialize.
impl Strategy for core::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "empty strategy range");
        let span = e - s;
        if span == u64::MAX {
            rng.next_u64()
        } else {
            s + rng.below(span + 1)
        }
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical full-domain strategy (for [`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: elements from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The test-defining macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let hash = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::TestRng::deterministic(hash, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg),*
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg;)*
                        let _: () = $body;
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case}/{} failed with inputs: {}",
                            config.cases, inputs
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Upstream-style prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec((0u32..4, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, _b) in v {
                prop_assert!(a < 4);
            }
        }

        #[test]
        fn prop_map_applies(s in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!((10..50).contains(&s));
            prop_assert_eq!(s % 10, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic(1, 2);
        let mut b = crate::TestRng::deterministic(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
