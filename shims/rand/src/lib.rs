//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! See `shims/README.md` for scope and caveats. Streams are internally
//! deterministic (same seed ⇒ same sequence on every platform) but not
//! bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits (little-endian composition of two `u32`s by
    /// default, matching ChaCha-style word streams).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let v = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(v)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (not upstream's
    /// expansion, but equally well distributed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// The upstream prelude: traits needed for method syntax.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

pub mod rngs {
    //! Minimal stand-in for `rand::rngs`.

    use crate::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Never start all-zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
