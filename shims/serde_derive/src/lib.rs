//! Offline shim for `serde_derive` 1: emits empty marker-trait impls
//! for the shimmed `serde` crate. Written against `proc_macro` alone
//! (no `syn`/`quote` available offline); supports plain structs and
//! enums without generic parameters, which covers this workspace.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Name of the item a `struct`/`enum` keyword introduces.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "serde_derive shim does not support generic types ({name})"
                            );
                        }
                        return name;
                    }
                    other => panic!("expected item name after `{kw}`, got {other:?}"),
                }
            }
        }
    }
    panic!("serde_derive shim: no struct/enum found in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
