//! Offline shim for the subset of `criterion` 0.5 this workspace uses:
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs one warm-up iteration followed by `sample_size`
//! timed iterations and prints min / mean / median wall-clock times.
//! There is no statistical outlier analysis or HTML report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and records per-iteration times.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measure `sample_size` invocations of `routine` (after one
    /// warm-up call whose result is discarded).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        {
            let mut bencher = Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
            };
            f(&mut bencher);
        }
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{:<40} min {:>12}  mean {:>12}  median {:>12}  ({} samples)",
            self.name,
            id.id,
            format_duration(min),
            format_duration(mean),
            format_duration(median),
            samples.len()
        );
        self.criterion
            .results
            .push((format!("{}/{}", self.name, id.id), mean));
    }

    /// End the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// `(benchmark id, mean time)` of every completed benchmark.
    pub results: Vec<(String, Duration)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== benchmark group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function(BenchmarkId::from_parameter("bench"), f);
        group.finish();
        self
    }
}

/// Define a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups (ignores CLI arguments the
/// cargo bench harness may pass).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wastes_time(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn runs_and_records() {
        let mut c = Criterion::default();
        wastes_time(&mut c);
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.contains("shim_smoke"));
    }
}
