//! Offline shim for `rand_chacha` 0.3: [`ChaCha8Rng`] built on the
//! genuine ChaCha permutation (8 rounds). Word order and seeding match
//! this workspace's `rand` shim, not upstream, so streams are
//! internally deterministic but not upstream-bit-compatible.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// The ChaCha stream cipher as a deterministic RNG, 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (from the seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 means "refill".
    index: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        input[4..12].copy_from_slice(&self.key);
        input[12] = self.counter as u32;
        input[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: one stream per seed.
        let mut working = input;
        for _ in 0..4 {
            // A double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn blocks_advance() {
        // More than one 16-word block must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x = rng.gen_range(0..100u32);
        assert!(x < 100);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
