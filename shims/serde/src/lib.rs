//! Offline shim for `serde` 1.
//!
//! The workspace only uses serde as derive targets and trait bounds
//! (there is no serialization backend in the build environment), so the
//! traits are markers and the derives emit empty impls.

#![forbid(unsafe_code)]

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for &T {}
